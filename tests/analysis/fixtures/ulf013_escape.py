"""Seeded violations for ULF013 (shared cached references escaping).

The object caches hand out *the* shared instance; storing one into
long-lived state or returning an unowned view breaks the owned-copy
contract (docs/performance.md).  Only lines tagged ``BAD`` may trip
ULF013; the corrected variants below each violation stay clean, as do
the legitimate provider pass-throughs.
"""

from repro.sparsegrid.combine import combination_plan
from repro.sparsegrid.index import cached_scheme
from repro.sparsegrid.interpolation import _axis_resample_weights

_SCHEMES = {}


# --- shared instance stored into instance state ------------------------
class PlanHolder:
    def __init__(self, cfg, target):
        self.plan = combination_plan(cfg, target)  # BAD
        self.rows = []

    def collect(self, src, dst):
        _, _, w = _axis_resample_weights(src, dst)
        self.rows.append(w)  # BAD


class OwnedPlanHolder:
    def __init__(self, cfg, target):
        self.plan_key = (cfg, target)  # store the key, not the instance
        self.rows = []

    def collect(self, src, dst):
        _, _, w = _axis_resample_weights(src, dst)
        self.rows.append(w.copy())  # owned copy: fine


# --- shared instance stored into a module-level container --------------
def memo_scheme(n, level):
    scheme = cached_scheme(n, level)
    _SCHEMES[(n, level)] = scheme  # BAD
    return scheme


def lookup_scheme(n, level):
    # the provider *is* the memo — no second cache layer needed
    return cached_scheme(n, level)


# --- returning an unowned view -----------------------------------------
def first_row(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    return w[0]  # BAD


def first_row_owned(src, dst):
    _, _, w = _axis_resample_weights(src, dst)
    return w[0].copy()


# --- provider pass-through is a provider, not an escape ----------------
def scheme_for(cfg):
    return cached_scheme(cfg.n, cfg.level)


def caller_of_provider(cfg, out):
    # out is a caller-owned local argument, not long-lived state
    scheme = scheme_for(cfg)
    local = [scheme]
    return len(local)
