"""Seeded violations for ULF014 (unordered iteration feeding results).

The sweep engine promises bit-identical serial and pooled results; set
iteration order and ``id()`` values vary between processes.  Only lines
tagged ``BAD`` may trip ULF014 — the ``sorted(...)`` twins show the
fix genuinely clearing the flow-sensitive taint.
"""

import math


# --- set iteration feeding a float accumulator -------------------------
def total_unordered(xs):
    pending = set(xs)
    total = 0.0
    for x in pending:  # BAD
        total += x
    return total


def total_sorted(xs):
    pending = set(xs)
    total = 0.0
    for x in sorted(pending):  # order pinned: fine
        total += x
    return total


def total_rebound(xs):
    pending = set(xs)
    pending = sorted(pending)  # rebinding clears the set taint
    total = 0.0
    for x in pending:
        total += x
    return total


# --- set iteration without accumulation is order-free ------------------
def index_members(xs):
    members = set(xs)
    table = {}
    for x in members:  # dict store keyed by x: order-independent
        table[x] = x * 2
    return table


# --- sum / fsum over a set ---------------------------------------------
def quick_sum(xs):
    return sum(set(xs))  # BAD


def union_sum(xs, ys):
    combined = set(xs) | set(ys)
    return math.fsum(combined)  # BAD


def stable_sum(xs):
    return sum(sorted(set(xs)))


# --- id()-derived keys --------------------------------------------------
def weights_by_id(grids, w):
    weights = {}
    for g in grids:
        weights[id(g)] = w  # BAD
    return weights


def table_by_id(grids, w):
    return {id(g): w for g in grids}  # BAD


def weights_by_index(grids, w):
    return {i: w for i, g in enumerate(grids)}


def dedup_by_identity(grids):
    seen = set()
    fresh = []
    for g in grids:
        if id(g) not in seen:
            seen.add(id(g))  # membership dedup: order-free, fine
            fresh.append(g)
    return fresh
