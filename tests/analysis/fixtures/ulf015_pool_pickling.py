"""Seeded violations for ULF015 (unpicklable pool-transport payloads).

Pool transports pickle the callable and every payload argument into
worker processes; lambdas, nested functions, and process-local
resources (locks, file handles, a whole Universe) fail there — some
only at runtime under the spawn start method.  Only lines tagged
``BAD`` may trip ULF015.
"""

import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import Pool

from repro.mpi.universe import Universe
from repro.sweep.runner import _execute


# --- lambdas and nested functions cannot be pickled --------------------
def run_doubled(points):
    with Pool() as pool:
        return pool.map(lambda p: p * 2, points)  # BAD


def run_nested(points):
    def prepare(p):
        return p * 2

    with Pool() as pool:
        return pool.map(prepare, points)  # BAD


def run_module_level(points):
    with Pool() as pool:
        return pool.map(_execute, points)  # module-level: pickles fine


# --- process-local resources in the payload ----------------------------
def run_locked(task, points):
    lock = threading.Lock()
    with ProcessPoolExecutor() as executor:
        return [executor.submit(task, p, lock) for p in points]  # BAD


def run_universe(step, machine):
    uni = Universe(machine)
    with ProcessPoolExecutor() as executor:
        return executor.submit(step, uni)  # BAD


def run_logged(task, points, path):
    fh = open(path, "w")
    with Pool() as pool:
        return pool.apply_async(task, fh)  # BAD


def run_with_keys(task, points):
    # ship plain data; workers rebuild their own resources
    with ProcessPoolExecutor() as executor:
        return [executor.submit(task, p) for p in points]


# --- .map on a non-pool object is out of scope -------------------------
def rename_series(series):
    return series.map(str)
