"""ULF016: cross-rank collective-sequence divergence under failure.

After the repair, the root probes with a ``barrier`` while everyone
else answers a ``bcast`` — same communicator, same rendezvous slot,
different collectives.  The divergence hides inside helpers, so the
static rank-taint rule (ULF006) cannot see it; the model checker
inlines both helpers and catches the mismatched arrival.
"""


async def probe_root(alive):
    await alive.barrier()


async def probe_other(alive):
    sync = await alive.bcast(0, root=0)
    return sync


# repro: protocol ranks=3 failures=1
async def divergent_probe(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    ok = await alive.agree(1)
    if alive.rank == 0:
        await probe_root(alive)  # BAD
    else:
        await probe_other(alive)  # BAD
    await alive.barrier()
    return ok


# repro: protocol ranks=3 failures=1
async def uniform_probe(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    ok = await alive.agree(1)
    if alive.rank == 0:
        await probe_other(alive)
    else:
        await probe_other(alive)
    await alive.barrier()
    return ok
