"""ULF017: a survivor waits on a repair phase no live rank will enter.

After shrinking, the new root drains "straggler" messages that no
surviving rank ever sends: the root blocks in ``recv`` while everyone
else blocks in the closing barrier that includes the root — a deadlock
reachable only under failure, invisible to trace replay of clean runs.
"""


async def drain_stragglers(alive):
    if alive.rank == 0:
        leftover = await alive.recv(source=1, tag=7)
        return leftover
    return None


# repro: protocol ranks=3 failures=1
async def stranded_wait(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        await drain_stragglers(alive)  # BAD
    await alive.barrier()


# repro: protocol ranks=3 failures=1
async def counted_wait(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        note = await alive.allgather(1)
        del note
    await alive.barrier()
