"""ULF018: checkpoint-epoch inconsistency across restore paths.

Rank 0 advances its checkpoint epoch alone (an unguarded fast path);
after a failure every survivor restores grid 0 — and observes a
different epoch depending on which rank it is.  The restored state is
a mix of two checkpoint generations.
"""


# repro: protocol ranks=3 failures=1
async def skewed_checkpoint(ctx, world):
    ckpt_write(0, 1)
    if world.rank == 0:
        ckpt_write(0, 2)
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        epoch = ckpt_restore(0)  # BAD
        del epoch
    await alive.barrier()


# repro: protocol ranks=3 failures=1
async def sealed_checkpoint(ctx, world):
    ckpt_write(0, 1)
    seal = await world.allreduce(1)
    ckpt_write(0, 2)
    del seal
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    if failed_count(world) > 0:
        epoch = ckpt_restore(0)
        del epoch
    await alive.barrier()
