"""ULF019: spawn/merge handshake mismatch.

The paper's repair merges survivors with ``high=False`` and re-spawned
children with ``high=True`` so the merged ordering restores the
original ranks.  ``impatient_parent`` merges ``high=True`` on both
sides: the intercomm-merge ordering contract breaks and the handshake
is flagged on both ends.
"""


# repro: protocol ranks=3 failures=1 child=eager_child
async def impatient_parent(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    missing = failed_count(world)
    if missing > 0:
        inter = await alive.spawn_multiple(missing, eager_child, ())
        merged = await inter.merge(high=True)  # BAD
        ready = await merged.agree(1)
        await merged.barrier()
        return ready
    await alive.barrier()
    return 1


async def eager_child(ctx):
    parent = ctx.get_parent()
    merged = await parent.merge(high=True)  # BAD
    ready = await merged.agree(1)
    await merged.barrier()
    return ready


# repro: protocol ranks=3 failures=1 child=patient_child
async def ordered_parent(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    missing = failed_count(world)
    if missing > 0:
        inter = await alive.spawn_multiple(missing, patient_child, ())
        merged = await inter.merge(high=False)
        ready = await merged.agree(1)
        await merged.barrier()
        return ready
    await alive.barrier()
    return 1


async def patient_child(ctx):
    parent = ctx.get_parent()
    merged = await parent.merge(high=True)
    ready = await merged.agree(1)
    await merged.barrier()
    return ready
