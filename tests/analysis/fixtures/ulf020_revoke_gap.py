"""ULF020: revoke-propagation gap.

The handler revokes the broken communicator (hidden behind a helper,
so the static typestate rule cannot track it) but the code then issues
an ordinary collective on that same communicator: any rank reaching the
``bcast`` after the revoke propagates gets ``RevokedError`` outside
every handler.  The fix shrinks first and talks on the repaired
communicator.
"""


def declare_failure(comm):
    comm.revoke()


# repro: protocol ranks=2 failures=1
async def eager_rebroadcast(ctx, world):
    try:
        await world.halo()
    except MPIError:
        declare_failure(world)
    status = await world.bcast(0, root=0)  # BAD
    await world.barrier()
    return status


# repro: protocol ranks=2 failures=1
async def guarded_rebroadcast(ctx, world):
    try:
        await world.halo()
    except MPIError:
        declare_failure(world)
    alive = await world.shrink()
    status = await alive.bcast(0, root=0)
    await alive.barrier()
    return status
