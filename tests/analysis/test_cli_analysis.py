"""End-to-end: trace recording through the runner/CLI into the analyzers."""

import pytest

from repro.analysis import check_protocol, find_message_races
from repro.cli import main as cli_main
from repro.core import AppConfig, plan_failures, run_app
from repro.machine.presets import OPL
from repro.mpi.tracing import Tracer


def headline_recovery_trace():
    """The Fig. 8 scenario: a CR run on the OPL preset with one real
    process failure, recorded end to end."""
    cfg = AppConfig(n=5, level=3, technique_code="CR", steps=4,
                    diag_procs=2, checkpoint_count=2)
    kills = plan_failures(cfg, 1, at=0.05, seed=0)
    tracer = Tracer()
    metrics = run_app(cfg, OPL, kills=kills, tracer=tracer)
    assert metrics.n_failures == 1
    return tracer


@pytest.fixture(scope="module")
def fig8_trace():
    return headline_recovery_trace()


def test_headline_fig8_trace_passes_protocol_check(fig8_trace):
    assert len(fig8_trace.events) > 0
    assert fig8_trace.dropped == 0
    violations = check_protocol(fig8_trace)
    assert violations == [], "\n".join(str(v) for v in violations)


def test_headline_fig8_trace_is_race_free(fig8_trace):
    assert find_message_races(fig8_trace) == []


def test_cli_analyze_trace_roundtrip(tmp_path, capsys, fig8_trace):
    path = tmp_path / "good.jsonl"
    fig8_trace.save(path)
    assert cli_main(["analyze-trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "protocol check: clean" in out
    assert "race check: clean" in out
    assert "recovery episodes" in out


def test_cli_analyze_trace_flags_doctored_trace(tmp_path, capsys, fig8_trace):
    doctored = Tracer()
    for ev in fig8_trace.events:
        if ev.kind not in ("revoke", "revoked"):
            doctored.record(ev.time, ev.actor, ev.kind, ev.detail)
    path = tmp_path / "bad.jsonl"
    doctored.save(path)
    assert cli_main(["analyze-trace", str(path)]) == 1
    out = capsys.readouterr().out
    assert "PROTO-SHRINK-BEFORE-REVOKE" in out


def test_cli_run_with_trace_writes_jsonl(tmp_path, capsys):
    path = tmp_path / "run.jsonl"
    rc = cli_main(["run", "--n", "5", "--level", "3", "--steps", "2",
                   "--technique", "CR", "--diag-procs", "2",
                   "--trace", str(path)])
    assert rc == 0
    assert path.exists()
    back = Tracer.load(path)
    assert len(back.events) > 0
    assert cli_main(["analyze-trace", str(path)]) == 0
