"""CLI contract for ``python -m repro verify-protocol`` plus the exit-code
alignment of ``analyze-trace`` and the extended rule-range parsing.

All three share the lint exit contract: 0 = clean, 1 = findings,
2 = usage error.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.sarif import validate_sarif
from repro.cli import main as cli_main

FIXTURES = Path(__file__).parent / "fixtures"


# ---------------------------------------------------------------------------
# verify-protocol
# ---------------------------------------------------------------------------
def test_verify_protocol_default_clean(capsys):
    assert cli_main(["verify-protocol"]) == 0
    out = capsys.readouterr().out
    for mode in ("CR", "RC", "AC", "SHRINK", "NC"):
        assert f"{mode}:" in out
    assert "deadlock-free" in out


def test_verify_protocol_mode_subset(capsys):
    assert cli_main(["verify-protocol", "--modes", "cr,rc"]) == 0
    out = capsys.readouterr().out
    assert "CR:" in out and "RC:" in out and "AC:" not in out


def test_verify_protocol_unknown_mode_exit_2(capsys):
    assert cli_main(["verify-protocol", "--modes", "XX"]) == 2
    assert "XX" in capsys.readouterr().err


def test_verify_protocol_json(capsys):
    assert cli_main(["verify-protocol", "--format", "json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert doc["ok"] is True
    assert {m["mode"] for m in doc["modes"]} == \
        {"CR", "RC", "AC", "SHRINK", "NC"}
    for m in doc["modes"]:
        assert m["states"] > 0
        assert m["violations"] == []


def test_verify_protocol_sarif_validates(capsys):
    assert cli_main(["verify-protocol", "--format", "sarif"]) == 0
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    assert doc["runs"][0]["results"] == []  # shipped modes are clean


# ---------------------------------------------------------------------------
# analyze-trace exit codes (aligned with the lint contract)
# ---------------------------------------------------------------------------
def test_analyze_trace_missing_file_exit_2(capsys):
    assert cli_main(["analyze-trace", "/no/such/trace.jsonl"]) == 2
    assert "no such trace file" in capsys.readouterr().err


def test_analyze_trace_not_a_trace_exit_2(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text("this is not json\n")
    assert cli_main(["analyze-trace", str(bogus)]) == 2
    assert "not a trace file" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# --select/--ignore ranges over the extended catalog
# ---------------------------------------------------------------------------
def test_select_range_covers_model_rules(capsys):
    fixture = FIXTURES / "ulf017_incomplete_repair.py"
    assert cli_main(["lint", "--select", "ULF016-ULF020", str(fixture)]) == 1
    out = capsys.readouterr().out
    assert "ULF017" in out


def test_select_range_excludes_other_rules(capsys):
    fixture = FIXTURES / "ulf017_incomplete_repair.py"
    assert cli_main(["lint", "--select", "ULF001-ULF004",
                     str(fixture)]) == 0


def test_ignore_range_drops_model_rules(capsys):
    fixture = FIXTURES / "ulf017_incomplete_repair.py"
    assert cli_main(["lint", "--ignore", "ULF016-020", str(fixture)]) == 0


def test_reversed_range_exit_2(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["lint", "--select", "ULF020-ULF016", "."])
    assert exc.value.code == 2


def test_out_of_catalog_range_exit_2(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["lint", "--select", "ULF016-ULF099", "."])
    assert exc.value.code == 2
