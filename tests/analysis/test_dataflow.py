"""CFG builder and fixpoint engine (repro.analysis.dataflow).

The CFG tests are golden-graph assertions over ``CFG.describe()`` — a
stable, line-oriented dump — on the adversarial shapes that break naive
builders: nested try/finally with returns, while/else, continue inside
an except handler, and async generators.  Changing the builder's output
deliberately means updating the goldens here.
"""

import ast
import textwrap

from repro.analysis.dataflow import Analysis, build_cfg, solve
from repro.analysis.dataflow.cfg import walk_shallow


def cfg_of(src):
    return build_cfg(ast.parse(textwrap.dedent(src)).body[0])


def golden(src, expected):
    got = cfg_of(src).describe()
    assert got == textwrap.dedent(expected).strip(), got


# ---------------------------------------------------------------------------
# golden graphs
# ---------------------------------------------------------------------------
def test_nested_try_finally_with_return():
    # the inner return must route through BOTH finally suites (inner B7,
    # then outer B4) before reaching the exit
    golden('''
    def f(a):
        try:
            try:
                if a:
                    return "inner"
            finally:
                inner_cleanup()
        finally:
            outer_cleanup()
        return "fell through"
    ''', '''
    B0[entry]
      => next->B2
    B1[exit]
      => (none)
    B2[body]
      => next->B5
    B3[try.after]
      return 'fell through'
      => return->B1
    B4[finally]
      outer_cleanup()
      => next->B3 return->B1
    B5[try.body]
      => exc->B4 next->B8
    B6[try.after]
      => exc->B4 finally->B4
    B7[finally]
      inner_cleanup()
      => exc->B4 next->B6 finally->B4
    B8[try.body]
      ?a
      => exc->B7 true->B9 false->B10
    B9[if.then]
      return 'inner'
      => exc->B7 finally->B7
    B10[if.after]
      => exc->B7 finally->B7
    ''')


def test_while_else_with_break():
    # `else` runs only on normal exhaustion (false edge); `break` skips it
    golden('''
    def f(items):
        while items:
            if probe(items):
                break
            items = items[1:]
        else:
            return "exhausted"
        return "broke out"
    ''', '''
    B0[entry]
      => next->B2
    B1[exit]
      => (none)
    B2[body]
      => next->B3
    B3[while.head]
      ?items
      => true->B5 false->B8
    B4[while.after]
      return 'broke out'
      => return->B1
    B5[while.body]
      ?probe(items)
      => true->B6 false->B7
    B6[if.then]
      break
      => break->B4
    B7[if.after]
      items = items[1:]
      => loop->B3
    B8[while.else]
      return 'exhausted'
      => return->B1
    ''')


def test_continue_inside_except():
    # the handler's `continue` jumps to the loop head, not to the code
    # after the try; the for header is lowered to `job = jobs`
    golden('''
    def f(jobs):
        for job in jobs:
            try:
                run(job)
            except OSError:
                log(job)
                continue
            record(job)
    ''', '''
    B0[entry]
      => next->B2
    B1[exit]
      => (none)
    B2[body]
      => next->B3
    B3[for.head]
      job = jobs
      ?jobs
      => true->B5 false->B4
    B4[for.after]
      => next->B1
    B5[for.body]
      => next->B8
    B6[try.after]
      record(job)
      => loop->B3
    B7[except]
      log(job)
      continue
      => continue->B3
    B8[try.body]
      run(job)
      => exc->B7 next->B6
    ''')


def test_async_generator():
    # awaits and yields do not split blocks: they stay inline where
    # walk_shallow finds them
    golden('''
    async def agen(comm, n):
        for i in range(n):
            value = await comm.recv(source=0, tag=i)
            yield value
    ''', '''
    B0[entry]
      => next->B2
    B1[exit]
      => (none)
    B2[body]
      => next->B3
    B3[for.head]
      i = range(n)
      ?range(n)
      => true->B5 false->B4
    B4[for.after]
      => next->B1
    B5[for.body]
      value = await comm.recv(source=0, tag=i)
      yield value
      => loop->B3
    ''')


# ---------------------------------------------------------------------------
# structural properties
# ---------------------------------------------------------------------------
def test_every_edge_targets_a_real_block():
    cfg = cfg_of('''
    def f(a, b):
        with a() as h:
            try:
                while b:
                    if h:
                        raise ValueError(b)
                    b -= 1
            except ValueError:
                pass
            finally:
                h.close()
        return b
    ''')
    for block in cfg.blocks.values():
        for target, kind in block.succs:
            assert target in cfg.blocks, (block, target, kind)


def test_preds_is_exact_reverse_of_succs():
    cfg = cfg_of('''
    def f(x):
        for i in x:
            if i:
                continue
        return x
    ''')
    preds = cfg.preds()
    fwd = {(b.bid, t, k) for b in cfg.blocks.values() for t, k in b.succs}
    rev = {(p, b, k) for b, plist in preds.items() for p, k in plist}
    assert fwd == rev


def test_walk_shallow_skips_nested_scopes():
    stmt = ast.parse(
        "def outer():\n"
        "    a = 1\n"
        "    def inner():\n"
        "        b = hidden()\n"
        "    return a\n").body[0]
    calls = [n for s in stmt.body for n in walk_shallow(s)
             if isinstance(n, ast.Call)]
    assert calls == []


# ---------------------------------------------------------------------------
# fixpoint engine
# ---------------------------------------------------------------------------
class _ReachingCalls(Analysis):
    """Forward may-analysis: names of functions called on some path."""
    direction = "forward"

    def boundary(self, cfg):
        return frozenset()

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_stmt(self, stmt, state, emit=None):
        names = {n.func.id for n in walk_shallow(stmt)
                 if isinstance(n, ast.Call)
                 and isinstance(n.func, ast.Name)}
        return state | names


def test_forward_solve_joins_over_branches():
    cfg = cfg_of('''
    def f(a):
        if a:
            left()
        else:
            right()
        after()
    ''')
    _, out = solve(cfg, _ReachingCalls())
    assert out[cfg.exit] == {"left", "right", "after"}


def test_loop_body_facts_reach_the_head():
    cfg = cfg_of('''
    def f(xs):
        for x in xs:
            inside()
    ''')
    in_states, _ = solve(cfg, _ReachingCalls())
    head = next(b for b in cfg.blocks.values() if b.label == "for.head")
    # back edge carries the loop body's facts into the head's in-state
    assert "inside" in in_states[head.bid]


def test_unreachable_code_stays_bottom():
    cfg = cfg_of('''
    def f():
        return early()
        dead()
    ''')
    in_states, _ = solve(cfg, _ReachingCalls())
    dead = [bid for bid, b in cfg.blocks.items()
            if any("dead" in ast.unparse(s) for s in b.stmts)]
    assert dead and all(in_states[bid] == frozenset() for bid in dead)


class _LiveNames(Analysis):
    """Backward may-analysis: names read later (tiny liveness)."""
    direction = "backward"

    def boundary(self, cfg):
        return frozenset()

    def bottom(self):
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer_stmt(self, stmt, state, emit=None):
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.targets[0], ast.Name):
            state = state - {stmt.targets[0].id}
        reads = {n.id for n in walk_shallow(stmt)
                 if isinstance(n, ast.Name)
                 and isinstance(n.ctx, ast.Load)}
        return state | reads


def test_backward_solve_liveness():
    cfg = cfg_of('''
    def f(a):
        x = a
        y = 1
        return x
    ''')
    _, out = solve(cfg, _LiveNames())
    # out_states of a backward analysis = state at the block *start*:
    # at function entry only `a` is live (y is dead, x not yet defined)
    assert out[cfg.entry] == {"a"}
