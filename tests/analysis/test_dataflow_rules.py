"""Acceptance tests for the dataflow rules (ULF006-ULF010).

Each fixture file pairs violating functions (lines tagged ``# BAD``)
with corrected variants.  The contract per rule is exact: the rule fires
on every ``# BAD`` line of its fixture (true positives) and nowhere else
in that file (no false positives on the corrected variants).
"""

from pathlib import Path

import pytest

from repro.analysis import lint_file
from repro.analysis.linter import SEVERITY, RULES

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "ULF006": FIXTURES / "ulf006_collective_divergence.py",
    "ULF007": FIXTURES / "ulf007_use_after_revoke.py",
    "ULF008": FIXTURES / "ulf008_double_free.py",
    "ULF009": FIXTURES / "ulf009_tag_mismatch.py",
    "ULF010": FIXTURES / "ulf010_interprocedural_ckpt.py",
    "ULF011": FIXTURES / "ulf011_frozen_state.py",
    "ULF012": FIXTURES / "ulf012_purity.py",
    "ULF013": FIXTURES / "ulf013_escape.py",
    "ULF014": FIXTURES / "ulf014_nondeterminism.py",
    "ULF015": FIXTURES / "ulf015_pool_pickling.py",
    # protocol-model rules: the fixtures carry `# repro: protocol`
    # annotations, so lint_file runs extraction + model checking on them
    "ULF016": FIXTURES / "ulf016_collective_divergence_failure.py",
    "ULF017": FIXTURES / "ulf017_incomplete_repair.py",
    "ULF018": FIXTURES / "ulf018_epoch_inconsistency.py",
    "ULF019": FIXTURES / "ulf019_spawn_merge_mismatch.py",
    "ULF020": FIXTURES / "ulf020_revoke_gap.py",
}


def bad_lines(path: Path):
    return {i for i, line in enumerate(path.read_text().splitlines(), 1)
            if "# BAD" in line}


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_fires_exactly_on_bad_lines(rule):
    path = RULE_FIXTURES[rule]
    expected = bad_lines(path)
    assert expected, f"fixture {path.name} has no # BAD markers"
    violations = lint_file(path)
    assert {v.rule for v in violations} == {rule}, \
        f"{path.name} should only ever trip {rule}: {violations}"
    assert {v.line for v in violations} == expected


@pytest.mark.parametrize("rule", sorted(RULE_FIXTURES))
def test_rule_is_catalogued(rule):
    assert rule in RULES
    assert SEVERITY[rule] in ("error", "warning")


def test_flow_sensitive_ulf005_partial_sync():
    # a sync on only one path no longer discharges the obligation
    src = (
        "async def ckpt(ctx, comm, disk, solver, fast):\n"
        "    if fast:\n"
        "        await comm.barrier()\n"
        "    await write_checkpoint(ctx, disk, 0, 0, solver, None)\n"
    )
    assert [v.rule for v in lint_file("x.py", source=src)] == ["ULF005"]


def test_flow_sensitive_ulf005_synced_on_all_paths():
    src = (
        "async def ckpt(ctx, comm, disk, solver, fast):\n"
        "    if fast:\n"
        "        await comm.barrier()\n"
        "    else:\n"
        "        await comm.allreduce(1)\n"
        "    await write_checkpoint(ctx, disk, 0, 0, solver, None)\n"
    )
    assert lint_file("x.py", source=src) == []


def test_ulf006_catches_loop_wrapped_divergence():
    src = (
        "async def sweep(comm, steps):\n"
        "    for _ in range(steps):\n"
        "        if comm.rank == 0:\n"
        "            await comm.barrier()\n"
    )
    assert [v.rule for v in lint_file("x.py", source=src)] == ["ULF006"]


def test_ulf007_message_names_the_revoked_comm():
    src = (
        "async def f(comm):\n"
        "    comm.revoke()\n"
        "    await comm.barrier()\n"
    )
    (v,) = lint_file("x.py", source=src)
    assert v.rule == "ULF007"
    assert "comm" in v.message and "revoke" in v.message.lower()
