"""Golden tests for the interprocedural effects/escape summary store
(repro.analysis.dataflow.effects), the substrate under ULF012/ULF013."""

import ast
import textwrap

from repro.analysis.dataflow.effects import EffectsStore


def store_for(source):
    return EffectsStore.build(ast.parse(textwrap.dedent(source)))


def describe(source):
    return store_for(source).describe().splitlines()


# ---------------------------------------------------------------------------
# direct effects
# ---------------------------------------------------------------------------
def test_pure_function_is_pure():
    (line,) = describe("""
    def f(x):
        return x * 2
    """)
    assert line == "f: pure"


def test_global_write_needs_decl_and_write():
    lines = describe("""
    COUNT = 0

    def bump():
        global COUNT
        COUNT = COUNT + 1

    def reads():
        global COUNT
        return COUNT
    """)
    assert lines[0] == "bump: global_write@5"
    assert lines[1] == "reads: pure"  # declared but never written


def test_io_open_and_path_methods():
    lines = describe("""
    def writes(p, data):
        with open(p, "w") as fh:
            fh.write(data)

    def touches(p):
        p.write_text("x")
    """)
    assert lines[0].startswith("writes: io@")
    assert lines[1].startswith("touches: io@")


def test_rng_and_clock_via_imports():
    lines = describe("""
    import random
    import time

    def roll():
        return random.random()

    def stamp():
        return time.time()

    def seeded():
        return random.Random(42).random()
    """)
    assert lines[0].startswith("roll: rng@")
    assert lines[1].startswith("stamp: clock@")
    assert lines[2] == "seeded: pure"


def test_os_and_shutil_are_io():
    lines = describe("""
    import os
    import shutil

    def rm(p):
        os.remove(p)

    def cp(a, b):
        shutil.copyfile(a, b)
    """)
    assert lines[0].startswith("rm: io@")
    assert lines[1].startswith("cp: io@")


# ---------------------------------------------------------------------------
# transitive closure over the local call graph
# ---------------------------------------------------------------------------
def test_effects_propagate_with_call_chain():
    lines = describe("""
    def leaf(p):
        open(p)

    def mid(p):
        leaf(p)

    def top(p):
        mid(p)
    """)
    assert lines[0] == "leaf: io@3"
    assert lines[1] == "mid: io@6[via leaf]"
    assert lines[2] == "top: io@9[via mid->leaf]"


def test_method_calls_resolve_through_self():
    lines = describe("""
    class Runner:
        def _log(self, p):
            open(p)

        def run(self, p):
            self._log(p)
    """)
    assert lines[0].startswith("Runner._log: io@")
    assert "[via Runner._log]" in lines[1]


def test_opaque_calls_assumed_pure():
    (line,) = describe("""
    def f(obj):
        obj.do_something_unknown()
        return helper_from_elsewhere(obj)
    """)
    assert line == "f: pure"


# ---------------------------------------------------------------------------
# shared_return tracking
# ---------------------------------------------------------------------------
def test_provider_return_is_shared():
    lines = describe("""
    def provider(n):
        return cached_scheme(n, 4)

    def passthrough(n):
        return provider(n)

    def bound_passthrough(n):
        s = provider(n)
        return s

    def copier(n):
        s = provider(n)
        return s.copy()
    """)
    assert lines[0].startswith("provider: shared_return@")
    assert lines[1].startswith("passthrough: shared_return@")
    assert lines[2].startswith("bound_passthrough: shared_return@")
    assert lines[3] == "copier: pure"  # .copy() result is owned


def test_lru_cache_decorated_is_shared():
    store = store_for("""
    import functools

    @functools.lru_cache(maxsize=None)
    def memo(n):
        return [n] * n
    """)
    assert store.summary("memo").has("shared_return")
    assert store.shared_locals() == {"memo"}


def test_shared_return_is_not_impure():
    store = store_for("""
    def provider(n):
        return cached_scheme(n, 4)
    """)
    assert store.summary("provider").pure
