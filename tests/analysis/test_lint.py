"""ULF lint rules (repro.analysis.linter)."""

from pathlib import Path

import repro
from repro.analysis import RULES, lint_file, lint_paths
from repro.cli import main as cli_main

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"
PACKAGE = Path(repro.__file__).parent


def rules_of(violations):
    return sorted({v.rule for v in violations})


# ---------------------------------------------------------------------------
# self-check and seeded-violation fixture
# ---------------------------------------------------------------------------
def test_repro_package_is_lint_clean():
    violations = lint_paths([PACKAGE])
    assert violations == [], "\n".join(str(v) for v in violations)


def test_fixture_trips_every_rule():
    violations = lint_file(FIXTURE)
    assert rules_of(violations) == sorted(RULES)  # ULF001..ULF005 all fire


def test_cli_lint_exit_codes(capsys):
    assert cli_main(["lint", str(FIXTURE)]) == 1
    assert "ULF001" in capsys.readouterr().out
    assert cli_main(["lint", str(PACKAGE)]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_cli_lint_rules_listing(capsys):
    assert cli_main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule in out


# ---------------------------------------------------------------------------
# rule behaviour on edge cases
# ---------------------------------------------------------------------------
def check(source):
    return lint_file("<test>", source=source)


def test_ulf001_allows_reraise_and_inspection():
    clean = """
try:
    risky()
except Exception:
    raise
try:
    risky()
except Exception as exc:
    log(exc)
try:
    risky()
except ValueError:
    pass
"""
    assert check(clean) == []


def test_ulf001_flags_silent_broad_except():
    assert rules_of(check("try:\n    x()\nexcept BaseException:\n"
                          "    pass\n")) == ["ULF001"]


def test_ulf002_allows_seeded_random():
    clean = """
import random
rng = random.Random(42)
value = rng.random()
"""
    assert check(clean) == []


def test_ulf002_tracks_import_aliases():
    src = """
from time import monotonic
import random as rnd

def f():
    a = monotonic()
    b = rnd.randint(0, 5)
"""
    assert rules_of(check(src)) == ["ULF002"]
    assert len(check(src)) == 2


def test_ulf003_allows_used_result():
    clean = """
async def f(comm):
    new = await comm.dup()
    return new
"""
    assert check(clean) == []


def test_ulf004_allows_survivor_ops_and_guarded_retries():
    clean = """
async def f(comm):
    try:
        await comm.barrier()
    except MPIError:
        await comm.agree(1)
        shrunk = await comm.shrink()
        try:
            await comm.barrier()
        except MPIError:
            pass
"""
    assert check(clean) == []


def test_ulf005_satisfied_by_reconstruct():
    clean = """
async def f(ctx, disk, solver):
    world = await communicator_reconstruct(ctx, world, entry=main)
    await write_checkpoint(ctx, disk, 0, 0, solver, None)
"""
    assert check(clean) == []


def test_noqa_suppression():
    src = "import time\nt = time.time()  # noqa\n"
    assert check(src) == []
    src = "import time\nt = time.time()  # noqa: ULF002\n"
    assert check(src) == []
    # a different rule's code does not suppress
    src = "import time\nt = time.time()  # noqa: ULF001\n"
    assert rules_of(check(src)) == ["ULF002"]


def test_noqa_space_after_comma():
    # `# noqa: ULF001, ULF002` (space after the comma) must suppress both
    src = ("import time, random\n"
           "t = time.time() + random.random()  # noqa: ULF001, ULF002\n")
    assert check(src) == []
    # ... and still not suppress rules that are not listed
    src = ("import time\n"
           "t = time.time()  # noqa: ULF001, ULF003\n")
    assert rules_of(check(src)) == ["ULF002"]


def test_noqa_trailing_justification_text():
    # prose after the codes is a justification, not part of the code list
    src = ("import time\n"
           "t = time.time()  # noqa: ULF002 wall clock fine in this demo\n")
    assert check(src) == []
    src = ("import time\n"
           "t = time.time()  # noqa: ULF002 -- host-only path\n")
    assert check(src) == []
    # justification naming another rule must not widen the suppression
    src = ("import time\n"
           "t = time.time()  # noqa: ULF001 unlike ULF002 this is listed\n")
    assert rules_of(check(src)) == ["ULF002"]


def test_noqa_case_and_bare_colon():
    src = "import time\nt = time.time()  # NOQA: ulf002\n"
    assert check(src) == []
    # `noqa:` with nothing parseable degrades to a blanket suppression
    src = "import time\nt = time.time()  # noqa: because I said so\n"
    assert check(src) == []


def test_noqa_applies_to_dataflow_rules_too():
    src = ("async def f(comm):\n"
           "    comm.revoke()\n"
           "    await comm.barrier()  # noqa: ULF007\n")
    assert check(src) == []


def test_syntax_error_becomes_violation(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    violations = lint_file(bad)
    assert [v.rule for v in violations] == ["ULF000"]
