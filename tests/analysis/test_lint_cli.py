"""CLI contract for ``python -m repro lint``: stable exit codes,
``--format json``, ``--select`` / ``--ignore``.

Exit codes are a CI interface: 0 = clean, 1 = violations found,
2 = usage error (missing path, unknown rule code).
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.linter import RULES, SEVERITY
from repro.cli import main as cli_main

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"
PACKAGE = Path(repro.__file__).parent


def test_exit_0_on_clean_tree(capsys):
    assert cli_main(["lint", str(PACKAGE)]) == 0
    assert "lint: clean" in capsys.readouterr().out


def test_exit_1_on_violations(capsys):
    assert cli_main(["lint", str(FIXTURE)]) == 1


def test_exit_2_on_missing_path(capsys):
    assert cli_main(["lint", "no/such/dir"]) == 2
    assert "no such file" in capsys.readouterr().err


def test_exit_2_on_unknown_rule(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["lint", "--select", "ULF999", str(FIXTURE)])
    assert exc.value.code == 2
    assert "ULF999" in capsys.readouterr().err


def test_json_format_schema(capsys):
    assert cli_main(["lint", "--format", "json", str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["files"] == 1
    assert report["counts"]["total"] == len(report["violations"])
    assert report["counts"]["total"] == \
        report["counts"]["error"] + report["counts"]["warning"]
    for v in report["violations"]:
        assert set(v) == {"rule", "severity", "path", "line", "col",
                          "message"}
        assert v["rule"] in RULES
        assert v["severity"] == SEVERITY[v["rule"]]


def test_json_format_clean_tree(capsys):
    assert cli_main(["lint", "--format", "json", str(PACKAGE)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["violations"] == []
    assert report["counts"] == {"total": 0, "error": 0, "warning": 0}


def test_select_narrows_report(capsys):
    assert cli_main(["lint", "--format", "json", "--select", "ULF002",
                     str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in report["violations"]} == {"ULF002"}


def test_select_accepts_comma_lists_and_repeats(capsys):
    assert cli_main(["lint", "--format", "json",
                     "--select", "ULF001,ULF002", "--select", "ULF006",
                     str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in report["violations"]} == \
        {"ULF001", "ULF002", "ULF006"}


def test_ignore_drops_rules(capsys):
    assert cli_main(["lint", "--format", "json", "--ignore",
                     ",".join(sorted(RULES)), str(FIXTURE)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["violations"] == []


def test_select_accepts_rule_ranges(capsys):
    assert cli_main(["lint", "--format", "json",
                     "--select", "ULF011-ULF015", str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in report["violations"]} == \
        {"ULF011", "ULF012", "ULF013", "ULF014", "ULF015"}


def test_select_accepts_short_range_form(capsys):
    assert cli_main(["lint", "--format", "json",
                     "--select", "ULF011-015", str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in report["violations"]} == \
        {"ULF011", "ULF012", "ULF013", "ULF014", "ULF015"}


def test_ranges_compose_with_plain_codes(capsys):
    assert cli_main(["lint", "--format", "json",
                     "--select", "ULF001,ULF011-ULF012", str(FIXTURE)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert {v["rule"] for v in report["violations"]} == \
        {"ULF001", "ULF011", "ULF012"}


def test_ignore_accepts_ranges(capsys):
    assert cli_main(["lint", "--format", "json",
                     "--ignore", "ULF001-ULF020", str(FIXTURE)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["violations"] == []


def test_exit_2_on_unknown_range_endpoint(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["lint", "--select", "ULF001-ULF999", str(FIXTURE)])
    assert exc.value.code == 2
    assert "ULF001-ULF999" in capsys.readouterr().err


def test_exit_2_on_reversed_range(capsys):
    with pytest.raises(SystemExit) as exc:
        cli_main(["lint", "--select", "ULF015-ULF011", str(FIXTURE)])
    assert exc.value.code == 2


# ---------------------------------------------------------------------------
# exit-code contract for the cache-safety severities
# ---------------------------------------------------------------------------
def test_warning_severity_still_exits_1(capsys):
    # ULF013/ULF014 are warnings, but any finding means a dirty tree
    assert SEVERITY["ULF014"] == "warning"
    fixture = FIXTURE.parent / "ulf014_nondeterminism.py"
    assert cli_main(["lint", "--format", "json", "--select", "ULF014",
                     str(fixture)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["error"] == 0
    assert report["counts"]["warning"] == report["counts"]["total"] > 0
    assert all(v["severity"] == "warning" for v in report["violations"])


def test_error_severity_counted_for_new_rules(capsys):
    assert SEVERITY["ULF011"] == SEVERITY["ULF012"] == SEVERITY["ULF015"] \
        == "error"
    fixture = FIXTURE.parent / "ulf011_frozen_state.py"
    assert cli_main(["lint", "--format", "json", "--select", "ULF011",
                     str(fixture)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["counts"]["warning"] == 0
    assert report["counts"]["error"] == report["counts"]["total"] > 0


def test_select_exit_0_when_selected_rule_is_absent(capsys):
    src_only_ulf002 = ("import time\n"
                       "t = time.time()\n")
    f = Path(str(FIXTURE)).parent / "_tmp_select.py"
    try:
        f.write_text(src_only_ulf002)
        assert cli_main(["lint", "--select", "ULF001", str(f)]) == 0
    finally:
        f.unlink()


def test_syntax_error_survives_select(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    assert cli_main(["lint", "--select", "ULF001", str(bad)]) == 1
    assert "ULF000" in capsys.readouterr().out
