"""Explicit-state checker semantics on hand-assembled skeletons
(repro.analysis.model.checker).

These tests drive the checker directly through the IR assembler so the
semantics under test (rendezvous, failure injection, hang
classification, timelines) are isolated from the extractor.
"""

import pytest

from repro.analysis.model.checker import (ProtocolModel, check_model)
from repro.analysis.model.ir import (Asm, Branch, Jump, Op, Return, SetVar,
                                     TryPush, TryPop)

W = ("var", "__world__")


def guarded_recovery():
    """try: halo / except: revoke; shrink; barrier on survivors."""
    a = Asm()
    t = a.emit(TryPush(lineno=1))
    a.emit(Op("halo", W, lineno=2))
    a.emit(TryPop(lineno=3))
    j = a.emit(Jump(lineno=3))
    a.patch(t, "handler")
    a.emit(Op("revoke", W, lineno=4))
    a.patch(j, "target")
    a.emit(Op("shrink", W, out="alive", lineno=5))
    a.emit(Op("barrier", ("var", "alive"), lineno=6))
    a.emit(Return(lineno=7))
    return a.finish("guarded", "<test>")


def unguarded():
    """halo with no handler: a failure escapes as ProcFailedError."""
    a = Asm()
    a.emit(Op("halo", W, lineno=2))
    a.emit(Op("barrier", W, lineno=3))
    a.emit(Return(lineno=4))
    return a.finish("unguarded", "<test>")


def stranded():
    """After repair, survivor rank 0 recvs a message no live rank sends."""
    a = Asm()
    t = a.emit(TryPush(lineno=1))
    a.emit(Op("halo", W, lineno=2))
    a.emit(TryPop(lineno=3))
    j = a.emit(Jump(lineno=3))
    a.patch(t, "handler")
    a.emit(Op("revoke", W, lineno=4))
    a.patch(j, "target")
    a.emit(Op("shrink", W, out="alive", lineno=5))
    br = a.emit(Branch(("cmp", ">", ("failed_count", W), ("const", 0)),
                       lineno=6))
    a.patch(br, "then_pc")
    br2 = a.emit(Branch(("cmp", "==", ("rank", ("var", "alive")),
                         ("const", 0)), lineno=7))
    a.patch(br2, "then_pc")
    a.emit(Op("recv", ("var", "alive"), out="x",
              args={"source": ("const", 1), "tag": ("const", 7)},
              lineno=8))
    a.patch(br2, "else_pc")
    a.patch(br, "else_pc")
    a.emit(Op("barrier", ("var", "alive"), lineno=9))
    a.emit(Return(lineno=10))
    return a.finish("stranded", "<test>")


def divergent():
    """Rank 0 enters barrier; everyone else enters bcast — a cross-rank
    collective-sequence divergence, even without failures."""
    a = Asm()
    br = a.emit(Branch(("cmp", "==", ("rank", W), ("const", 0)), lineno=2))
    a.patch(br, "then_pc")
    a.emit(Op("barrier", W, lineno=3))
    j = a.emit(Jump(lineno=3))
    a.patch(br, "else_pc")
    a.emit(Op("bcast", W, out="x",
              args={"value": ("const", 0), "root": ("const", 0)}, lineno=4))
    a.patch(j, "target")
    a.emit(Return(lineno=5))
    return a.finish("divergent", "<test>")


def test_guarded_recovery_is_deadlock_free():
    r = check_model(ProtocolModel(guarded_recovery(), ranks=3, failures=1))
    assert r.ok, [v.message for v in r.violations]
    assert r.kills_explored >= 1
    assert "deadlock-free" in r.summary()


def test_unguarded_failure_escapes_as_ulf017():
    r = check_model(ProtocolModel(unguarded(), ranks=2, failures=1))
    assert not r.ok
    assert {v.rule for v in r.violations} == {"ULF017"}


def test_stranded_recv_flagged_at_the_recv():
    r = check_model(ProtocolModel(stranded(), ranks=3, failures=1))
    assert not r.ok
    assert {v.rule for v in r.violations} == {"ULF017"}
    assert any(v.lineno == 8 for v in r.violations)


def test_collective_signature_divergence_is_ulf016():
    r = check_model(ProtocolModel(divergent(), ranks=2, failures=0))
    assert not r.ok
    assert {v.rule for v in r.violations} == {"ULF016"}
    # both diverging call sites are named
    lines = {v.lineno for v in r.violations}
    assert {3, 4} <= lines or any(
        "line 3" in v.message or "line 4" in v.message
        for v in r.violations)


def test_zero_failure_budget_cannot_kill():
    for prog in (guarded_recovery(), unguarded(), stranded()):
        r = check_model(ProtocolModel(prog, ranks=3, failures=0))
        assert r.ok, (prog.name, [v.message for v in r.violations])
        assert r.kills_explored == 0


def test_counterexample_timeline_is_per_rank_steps():
    r = check_model(ProtocolModel(unguarded(), ranks=2, failures=1))
    tl = r.violations[0].timeline
    assert tl  # non-empty rendered timeline
    text = "\n".join(tl) if isinstance(tl, (list, tuple)) else str(tl)
    # per-rank step lines: "step   N: rK: ... (line L)"
    assert "step" in text
    assert "r0" in text or "r1" in text
    assert "line" in text


def test_single_process_trivial_model():
    a = Asm()
    a.emit(SetVar("x", ("const", 1), lineno=1))
    a.emit(Return(("var", "x"), lineno=2))
    sk = a.finish("trivial", "<test>")
    r = check_model(ProtocolModel(sk, ranks=1, failures=0))
    assert r.ok and r.terminals >= 1
