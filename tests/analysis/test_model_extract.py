"""Protocol-skeleton extraction (repro.analysis.model.extract).

Exercises the source-to-IR translation: op recognition, helper
inlining with call-site line anchoring, loop unrolling, try/except
lowering, annotation discovery, and the real ft.reconstruct registry.
"""

import ast

import pytest

from repro.analysis.model.extract import (ExtractError, build_module_env,
                                          extract_function,
                                          find_protocol_models,
                                          reconstruct_registry)
from repro.analysis.model.ir import FailStop, Op, TryPush, TryPop


def extract(src, name, *, failures=1, registry=None, consts=None):
    tree = ast.parse(src)
    env = build_module_env(tree, "<test>", const_overrides=consts or {})
    func = next(n for n in ast.walk(tree)
                if isinstance(n, (ast.AsyncFunctionDef, ast.FunctionDef))
                and n.name == name)
    return extract_function(func, env, failures=failures,
                            registry=registry or {}, name=name)


def op_kinds(sk):
    return [i.kind for i in sk.instrs if isinstance(i, Op)]


def test_basic_collectives_and_guard():
    sk = extract("""
async def f(ctx, world):
    try:
        await world.halo()
    except MPIError:
        world.revoke()
    alive = await world.shrink()
    ok = await alive.agree(1)
    await alive.barrier()
    return ok
""", "f")
    kinds = op_kinds(sk)
    assert kinds == ["halo", "revoke", "shrink", "agree", "barrier"]
    assert any(isinstance(i, TryPush) for i in sk.instrs)
    assert any(isinstance(i, TryPop) for i in sk.instrs)


def test_helper_inlined_and_anchored_at_call_site():
    src = """
async def probe(comm):
    await comm.barrier()

async def f(ctx, world):
    await probe(world)
"""
    sk = extract(src, "f")
    (barrier,) = [i for i in sk.instrs
                  if isinstance(i, Op) and i.kind == "barrier"]
    # anchored at the call line in f, not the body line in probe
    assert barrier.lineno == 6


def test_sync_comm_helper_is_inlined():
    src = """
def declare_failure(comm):
    comm.revoke()

async def f(ctx, world):
    declare_failure(world)
    await world.shrink()
"""
    assert op_kinds(extract(src, "f")) == ["revoke", "shrink"]


def test_non_comm_helper_stays_opaque():
    src = """
def pick_hosts(names):
    return sorted(names)

async def f(ctx, world):
    hosts = pick_hosts(("a", "b"))
    await world.barrier()
    return hosts
"""
    assert op_kinds(extract(src, "f")) == ["barrier"]


def test_static_range_fully_unrolled():
    src = """
async def f(ctx, world):
    for seg in range(3):
        await world.barrier()
"""
    assert op_kinds(extract(src, "f")) == ["barrier"] * 3


def test_module_constant_resolves_range_bound():
    src = """
SEGMENTS = 2

async def f(ctx, world):
    for seg in range(SEGMENTS):
        await world.barrier()
"""
    assert op_kinds(extract(src, "f")) == ["barrier"] * 2


def test_call_site_constant_resolves_helper_range():
    src = """
async def loop(comm, n):
    for seg in range(n):
        await comm.barrier()

async def f(ctx, world):
    await loop(world, 2)
"""
    assert op_kinds(extract(src, "f")) == ["barrier"] * 2


def test_spawn_and_merge_args():
    src = """
async def f(ctx, world):
    alive = await world.shrink()
    inter = await alive.spawn_multiple(1, child, ())
    merged = await inter.merge(high=False)
    return merged

async def child(ctx):
    pass
"""
    sk = extract(src, "f")
    spawn = next(i for i in sk.instrs
                 if isinstance(i, Op) and i.kind == "spawn")
    assert spawn.args["count"] == ("const", 1)
    merge = next(i for i in sk.instrs
                 if isinstance(i, Op) and i.kind == "merge")
    assert merge.args["high"] == ("const", False)


def test_reduce_op_symbol_resolved_by_name():
    src = """
from repro.mpi.comm import MAX

async def f(ctx, world):
    h = await world.allreduce(0, op=MAX)
    return h
"""
    sk = extract(src, "f")
    red = next(i for i in sk.instrs
               if isinstance(i, Op) and i.kind == "allreduce")
    assert red.args["op"] == ("const", "max")


def test_raise_becomes_failstop():
    src = """
async def f(ctx, world):
    if world.rank == 0:
        raise RuntimeError("boom")
    await world.barrier()
"""
    sk = extract(src, "f")
    assert any(isinstance(i, FailStop) for i in sk.instrs)


def test_recursion_is_rejected():
    src = """
async def f(ctx, world):
    await world.barrier()
    await f(ctx, world)
"""
    with pytest.raises(ExtractError):
        extract(src, "f")


def test_find_protocol_models_both_annotation_forms():
    src = '''
from repro.analysis.annotations import protocol_model

@protocol_model(ranks=3, failures=1)
async def deco(ctx, world):
    await world.barrier()

# repro: protocol ranks=2 failures=1 child=kid
async def comment(ctx, world):
    await world.barrier()

async def kid(ctx):
    pass

async def plain(ctx, world):
    await world.barrier()
'''
    found = find_protocol_models(ast.parse(src), src)
    by_name = {f.name: params for f, params in found}
    assert set(by_name) == {"deco", "comment"}
    assert by_name["deco"]["ranks"] == 3
    assert by_name["comment"] == {"ranks": 2, "failures": 1, "child": "kid"}


def test_reconstruct_registry_has_repair_entry_points():
    reg = reconstruct_registry()
    assert "communicator_reconstruct" in reg
    func, env = reg["communicator_reconstruct"]
    assert isinstance(func, (ast.AsyncFunctionDef, ast.FunctionDef))
