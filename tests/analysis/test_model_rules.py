"""Protocol-model rule integration (repro.analysis.model.rules).

Covers the lint hook (annotated functions model-checked inside
``lint_file``), the shipped-mode verifier (CR/RC/AC/SHRINK/NC
deadlock-free with the real ft.reconstruct inlined), and error
reporting.
"""

import pytest

from repro.analysis import lint_file
from repro.analysis.linter import RULES, SEVERITY
from repro.analysis.model import MODEL_RULES, verify_modes


def test_model_rules_are_catalogued_as_errors():
    for rule in ("ULF016", "ULF017", "ULF018", "ULF019", "ULF020"):
        assert rule in MODEL_RULES
        assert rule in RULES
        assert SEVERITY[rule] == "error"


def test_shipped_modes_are_deadlock_free():
    reports = verify_modes()
    assert {r.mode for r in reports} == \
        {"CR", "RC", "AC", "SHRINK", "NC"}
    for rep in reports:
        assert rep.ok, (rep.mode, [v.message for v in rep.result.violations])
        assert rep.result.states > 0
        assert rep.result.kills_explored >= 1  # single-failure injection ran


def test_mode_subset_and_case_insensitive():
    (rep,) = verify_modes(["cr"])
    assert rep.mode == "CR"


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        verify_modes(["XX"])


def test_lint_message_names_model_and_cli():
    src = '''
# repro: protocol ranks=2 failures=1
async def lonely(ctx, world):
    await world.halo()
    await world.barrier()
'''
    violations = lint_file("m.py", source=src)
    assert violations, "unguarded halo under failure must be flagged"
    v = violations[0]
    assert v.rule in MODEL_RULES
    assert "lonely" in v.message
    assert "verify-protocol" in v.message  # points at the timeline CLI


def test_unannotated_functions_not_model_checked():
    src = '''
async def lonely(ctx, world):
    await world.halo()
    await world.barrier()
'''
    assert [v for v in lint_file("m.py", source=src)
            if v.rule in MODEL_RULES] == []


def test_broken_annotation_degrades_to_ulf000():
    src = '''
# repro: protocol ranks=2 failures=1 child=missing_child
async def parent(ctx, world):
    await world.barrier()
'''
    violations = lint_file("m.py", source=src)
    assert [v.rule for v in violations] == ["ULF000"]


def test_new_mode_skeletons_verify_as_a_subset():
    """The shrink-in-place and non-collective skeletons prove out on
    their own, over every single-failure placement."""
    shrink, nc = verify_modes(["SHRINK", "NC"])
    assert (shrink.mode, nc.mode) == ("SHRINK", "NC")
    for rep in (shrink, nc):
        assert rep.ok, (rep.mode,
                        [v.message for v in rep.result.violations])
        # one placement per killable model rank, all explored
        assert rep.result.kills_explored >= \
            rep.source.model.ranks - 1
