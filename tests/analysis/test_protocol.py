"""ULFM recovery-protocol checker (repro.analysis.protocol)."""

import pytest

from repro.analysis import (TruncatedTraceError, check_protocol,
                            format_violations, recovery_episodes)
from repro.mpi.tracing import Tracer

from .conftest import traced_recovery_run


def synth(*records):
    """Tracer from (time, actor, kind, detail) tuples."""
    t = Tracer()
    for rec in records:
        t.record(*rec)
    return t


# ---------------------------------------------------------------------------
# real traces
# ---------------------------------------------------------------------------
def test_good_recovery_trace_passes(good_recovery_trace):
    violations = check_protocol(good_recovery_trace)
    assert violations == [], format_violations(violations)


def test_good_trace_yields_complete_episode(good_recovery_trace):
    episodes = recovery_episodes(good_recovery_trace)
    assert episodes, "no recovery episode found in a recovery trace"
    ep = episodes[0]
    assert ep.comm.endswith(".world")
    # the full revoke -> shrink -> spawn -> merge -> split chain, in order
    assert ep.revoke_at <= ep.shrink_at <= ep.spawn_at \
        <= ep.merge_at <= ep.split_at
    assert "revoke@" in ep.describe()


def test_two_failure_trace_passes():
    tracer, results = traced_recovery_run(n=6, kill_ranks=(2, 4))
    assert results[0] == (0, 6, 6)
    assert check_protocol(tracer) == []


def test_reordered_trace_fails_with_precise_diagnostic(good_recovery_trace):
    """Strip the revoke from a real recovery: the checker must name the
    communicator, the dead member and the rule."""
    doctored = Tracer()
    for ev in good_recovery_trace.events:
        if ev.kind not in ("revoke", "revoked"):
            doctored.record(ev.time, ev.actor, ev.kind, ev.detail)
    violations = check_protocol(doctored)
    assert any(v.rule == "PROTO-SHRINK-BEFORE-REVOKE" for v in violations)
    v = next(v for v in violations if v.rule == "PROTO-SHRINK-BEFORE-REVOKE")
    assert v.comm.endswith(".world")
    killed = next(e.actor for e in good_recovery_trace.events
                  if e.kind == "kill")
    assert killed in v.message            # the dead member, by name
    assert "without a prior revoke" in v.message
    assert "PROTO-SHRINK-BEFORE-REVOKE" in str(v)


# ---------------------------------------------------------------------------
# synthetic traces, rule by rule
# ---------------------------------------------------------------------------
def test_shrink_before_revoke_flagged():
    t = synth(
        (0.0, "j.0", "coll", "barrier j.world r0"),
        (0.0, "j.1", "coll", "barrier j.world r1"),
        (0.5, "j.1", "kill", "fail-stop on node000"),
        (1.0, "j.0", "coll", "shrink j.world r0"),
    )
    violations = check_protocol(t)
    assert [v.rule for v in violations] == ["PROTO-SHRINK-BEFORE-REVOKE"]
    assert violations[0].time == 1.0


def test_shrink_after_revoke_clean():
    t = synth(
        (0.0, "j.0", "coll", "barrier j.world r0"),
        (0.0, "j.1", "coll", "barrier j.world r1"),
        (0.5, "j.1", "kill", "fail-stop on node000"),
        (0.9, "j.0", "revoke", "j.world r0"),
        (0.95, "j.world", "revoked", "propagated"),
        (1.0, "j.0", "coll", "shrink j.world r0"),
    )
    assert check_protocol(t) == []


def test_spawn_on_damaged_comm_flagged():
    t = synth(
        (0.0, "j.0", "coll", "barrier j.world r0"),
        (0.0, "j.1", "coll", "barrier j.world r1"),
        (0.5, "j.1", "kill", "fail-stop on node000"),
        (1.0, "spawn1", "spawn", "1 proc(s) for j.world"),
    )
    violations = check_protocol(t)
    assert [v.rule for v in violations] == ["PROTO-SPAWN-BEFORE-SHRINK"]
    assert "j.world" in violations[0].message


def test_spawn_on_shrunk_comm_clean():
    t = synth(
        (0.0, "j.0", "coll", "shrink j.world r0"),
        (1.0, "spawn1", "spawn", "1 proc(s) for j.world.shrunk"),
    )
    assert check_protocol(t) == []


def test_merge_before_spawn_flagged():
    t = synth(
        (1.0, "j.0", "coll", "merge spawn7.bridge r0"),
    )
    violations = check_protocol(t)
    assert [v.rule for v in violations] == ["PROTO-MERGE-BEFORE-SPAWN"]
    assert "spawn7" in violations[0].message


def test_split_before_merge_flagged():
    t = synth(
        (0.5, "spawn7", "spawn", "1 proc(s) for j.world.shrunk"),
        (1.0, "j.0", "coll", "split spawn7.bridge.merged r0"),
    )
    violations = check_protocol(t)
    assert [v.rule for v in violations] == ["PROTO-SPLIT-BEFORE-MERGE"]


def test_use_after_revoke_flagged():
    t = synth(
        (0.5, "j.0", "revoke", "j.world r0"),
        (0.6, "j.world", "revoked", "propagated"),
        (1.0, "j.0", "send", "j.world 0->1 tag=5"),
        (1.1, "j.0", "coll", "agree j.world r0"),   # survivor op: legal
        (1.2, "j.1", "coll", "shrink j.world r1"),  # survivor op: legal
    )
    violations = check_protocol(t)
    assert [v.rule for v in violations] == ["PROTO-USE-AFTER-REVOKE"]
    assert "send 0->1" in violations[0].message


def test_truncated_trace_refused():
    t = Tracer(max_events=1)
    t.record(0.0, "j.0", "coll", "barrier j.world r0")
    t.record(0.1, "j.0", "coll", "barrier j.world r0")
    with pytest.raises(TruncatedTraceError):
        check_protocol(t)
    assert check_protocol(t, allow_truncated=True) == []


def test_unparseable_events_are_skipped():
    t = synth(
        (0.0, "j.0", "coll", "garbage"),
        (0.1, "j.0", "send", "also not parseable"),
    )
    assert check_protocol(t) == []
