"""Vector-clock race detection and deadlock explanation (repro.analysis.races)."""

import pytest

from repro.analysis import find_message_races, format_races
from repro.analysis.races import _VC, compute_vector_clocks
from repro.analysis.events import parse_events
from repro.machine.presets import IDEAL
from repro.mpi.errors import ANY_SOURCE
from repro.mpi.tracing import Tracer
from repro.mpi.universe import Universe
from repro.simkernel.errors import DeadlockError


def traced_universe(n, entry, machine=IDEAL):
    uni = Universe(machine)
    uni.tracer = Tracer()
    job = uni.launch(n, entry)
    uni.run(raise_task_failures=False)
    return uni, job


# ---------------------------------------------------------------------------
# vector-clock primitives
# ---------------------------------------------------------------------------
def test_vc_ordering():
    a, b = _VC({"p": 1}), _VC({"p": 2, "q": 1})
    assert a.happens_before(b)
    assert not b.happens_before(a)
    c = _VC({"q": 5})
    assert a.concurrent(c)


def test_send_recv_creates_order():
    t = Tracer()
    t.record(0.0, "j.0", "send", "c 0->1 tag=0")
    t.record(1.0, "j.1", "recv", "c 0->1 tag=0")
    t.record(2.0, "j.1", "send", "c 1->0 tag=0")
    vcs = compute_vector_clocks(parse_events(t))
    assert vcs[0].happens_before(vcs[1])
    assert vcs[0].happens_before(vcs[2])


def test_collective_is_a_synchronisation_point():
    t = Tracer()
    t.record(0.0, "j.0", "send", "c 0->2 tag=0")       # before barrier
    t.record(1.0, "j.0", "coll", "barrier c r0")
    t.record(1.0, "j.1", "coll", "barrier c r1")
    t.record(2.0, "j.1", "send", "c 1->2 tag=0")       # after barrier
    vcs = compute_vector_clocks(parse_events(t))
    # rank 1's post-barrier send is ordered after rank 0's pre-barrier send
    assert vcs[0].happens_before(vcs[3])


# ---------------------------------------------------------------------------
# race detection on real runs
# ---------------------------------------------------------------------------
def test_injected_anysource_race_detected():
    """Two unsynchronised senders racing into one wildcard receive: the
    report must identify both send events."""
    async def main(ctx):
        if ctx.rank == 0:
            first = await ctx.comm.recv(source=ANY_SOURCE)
            second = await ctx.comm.recv(source=ANY_SOURCE)
            return (first, second)
        await ctx.comm.send(f"from {ctx.rank}", dest=0)
        return None

    uni, job = traced_universe(3, main)
    races = find_message_races(uni.tracer)
    assert races, "no race reported for two concurrent wildcard senders"
    r = races[0]
    assert r.matched_send.kind == "send" and r.racing_send.kind == "send"
    assert {r.matched_send.src, r.racing_send.src} == {1, 2}
    assert r.recv.anysrc
    text = format_races(races)
    assert "1->0" in text and "2->0" in text  # both sends in the report


def test_no_race_when_sends_are_ordered():
    """A collective between the two sends orders them: no race."""
    async def main(ctx):
        if ctx.rank == 1:
            await ctx.comm.send("early", dest=0)
        await ctx.comm.barrier()
        if ctx.rank == 2:
            await ctx.comm.send("late", dest=0)
        if ctx.rank == 0:
            a = await ctx.comm.recv(source=ANY_SOURCE)
            b = await ctx.comm.recv(source=ANY_SOURCE)
            return (a, b)
        return None

    uni, job = traced_universe(3, main)
    assert find_message_races(uni.tracer) == []


def test_no_race_for_named_source_receives():
    async def main(ctx):
        if ctx.rank == 0:
            a = await ctx.comm.recv(source=1)
            b = await ctx.comm.recv(source=2)
            return (a, b)
        await ctx.comm.send(ctx.rank, dest=0)
        return None

    uni, job = traced_universe(3, main)
    assert find_message_races(uni.tracer) == []


# ---------------------------------------------------------------------------
# wait-for-graph deadlock explanation
# ---------------------------------------------------------------------------
def test_deadlock_error_carries_wait_for_graph():
    """Two ranks receiving from each other with no sends: the DeadlockError
    must name the cycle."""
    async def main(ctx):
        peer = 1 - ctx.rank
        await ctx.comm.recv(source=peer)
        return None

    uni = Universe(IDEAL)
    job = uni.launch(2, main)
    with pytest.raises(DeadlockError) as excinfo:
        uni.run()
    msg = str(excinfo.value)
    assert "wait-for graph" in msg
    assert "cycle:" in msg
    assert excinfo.value.wait_graph            # also available structurally
    # both ranks appear in the cycle line
    cycle_line = next(l for l in msg.splitlines() if "cycle:" in l)
    assert "job" in cycle_line and "->" in cycle_line


def test_deadlock_on_missing_collective_participant():
    """Rank 1 never enters the barrier: the explainer should say rank 0
    waits on the barrier and name the absent task."""
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.barrier()
        else:
            await ctx.comm.recv(source=0)   # never satisfied either
        return None

    uni = Universe(IDEAL)
    uni.launch(2, main)
    with pytest.raises(DeadlockError) as excinfo:
        uni.run()
    msg = str(excinfo.value)
    assert "barrier" in msg
    assert "wait-for graph" in msg
