"""Runtime leak audit (repro.analysis.runtime)."""

from repro.analysis import check_runtime_leaks
from repro.machine.presets import IDEAL
from repro.mpi.universe import Universe


def run(n, entry, machine=IDEAL):
    uni = Universe(machine)
    job = uni.launch(n, entry)
    uni.run(raise_task_failures=False)
    return uni, job


def test_clean_run_reports_clean():
    async def main(ctx):
        await ctx.comm.barrier()
        if ctx.rank == 0:
            await ctx.comm.send("x", dest=1)
        elif ctx.rank == 1:
            await ctx.comm.recv(source=0)
        return None

    uni, _ = run(2, main)
    report = check_runtime_leaks(uni)
    assert report.errors == [] and report.warnings == []
    assert "clean" in str(report)


def test_abandoned_irecv_is_an_error():
    async def main(ctx):
        if ctx.rank == 0:
            ctx.comm.irecv(source=1)   # posted, never awaited
        return None

    uni, _ = run(2, main)
    report = check_runtime_leaks(uni)
    assert len(report.errors) == 1
    assert "pending receive" in report.errors[0]


def test_unreceived_message_is_a_warning():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("lost", dest=1)
        return None

    uni, _ = run(2, main)
    report = check_runtime_leaks(uni)
    assert report.errors == []
    assert any("never received" in w for w in report.warnings)
