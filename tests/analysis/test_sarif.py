"""SARIF 2.1.0 emission and validation (repro.analysis.sarif)."""

import json
from pathlib import Path

import pytest

from repro.analysis import RULES, SEVERITY, lint_file, to_sarif, validate_sarif
from repro.analysis.linter import LintViolation
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION
from repro.cli import main as cli_main

FIXTURE = Path(__file__).parent / "fixtures" / "lint_violations.py"


def sample_violations():
    return [
        LintViolation("ULF011", "src/x.py", 10, 3, "mutation of shared"),
        LintViolation("ULF014", "src/y.py", 2, 1, "set-order sum"),
    ]


def test_to_sarif_shape():
    doc = to_sarif(sample_violations(), n_files=2)
    assert doc["version"] == SARIF_VERSION
    assert doc["$schema"] == SARIF_SCHEMA
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-lint"
    # the driver carries the complete rule catalog with severities
    assert [r["id"] for r in driver["rules"]] == sorted(RULES)
    by_id = {r["id"]: r for r in driver["rules"]}
    assert by_id["ULF011"]["defaultConfiguration"]["level"] == "error"
    assert by_id["ULF014"]["defaultConfiguration"]["level"] == "warning"
    r11, r14 = run["results"]
    assert r11["ruleId"] == "ULF011" and r11["level"] == "error"
    assert r14["ruleId"] == "ULF014" and r14["level"] == "warning"
    loc = r11["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"] == "src/x.py"
    assert loc["region"] == {"startLine": 10, "startColumn": 3}
    assert run["properties"]["filesAnalyzed"] == 2


def test_emitted_documents_validate():
    validate_sarif(to_sarif([]))
    validate_sarif(to_sarif(sample_violations(), n_files=9))
    validate_sarif(to_sarif(lint_file(FIXTURE)))


@pytest.mark.parametrize("mutate, error", [
    (lambda d: d.update(version="2.0.0"), "version"),
    (lambda d: d.update(runs=[]), "runs"),
    (lambda d: d["runs"][0]["tool"].pop("driver"), "driver"),
    (lambda d: d["runs"][0]["results"][0].pop("ruleId"), "ruleId"),
    (lambda d: d["runs"][0]["results"][0].update(level="fatal"), "level"),
    (lambda d: d["runs"][0]["results"][0]["locations"][0]
        ["physicalLocation"]["region"].update(startLine=0), "startLine"),
    (lambda d: d["runs"][0]["tool"]["driver"]["rules"].append(
        {"id": "ULF001"}), "duplicate"),
])
def test_validator_rejects_malformed(mutate, error):
    doc = to_sarif(sample_violations())
    mutate(doc)
    with pytest.raises(ValueError, match=error):
        validate_sarif(doc)


# ---------------------------------------------------------------------------
# CLI integration
# ---------------------------------------------------------------------------
def test_cli_sarif_output_on_violations(capsys):
    assert cli_main(["lint", "--format", "sarif", str(FIXTURE)]) == 1
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    rules_seen = {r["ruleId"] for r in doc["runs"][0]["results"]}
    assert "ULF001" in rules_seen


def test_cli_sarif_output_clean(capsys, tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(x):\n    return x\n")
    assert cli_main(["lint", "--format", "sarif", str(clean)]) == 0
    doc = json.loads(capsys.readouterr().out)
    validate_sarif(doc)
    assert doc["runs"][0]["results"] == []
    # rule catalog ships even when there are no findings
    assert len(doc["runs"][0]["tool"]["driver"]["rules"]) == len(RULES)


def test_severity_catalogued_for_all_rules():
    for rule in RULES:
        assert SEVERITY[rule] in ("error", "warning")


# ---------------------------------------------------------------------------
# suppression fidelity: # noqa findings survive into SARIF as suppressions
# ---------------------------------------------------------------------------
NOQA_SRC = ("import time\n"
            "t = time.time()  # noqa: ULF002 replay-safe demo path\n"
            "u = time.time()\n")


def test_keep_suppressed_marks_instead_of_dropping():
    vs = lint_file("demo.py", source=NOQA_SRC, keep_suppressed=True)
    assert [(v.line, v.suppressed) for v in vs] == [(2, True), (3, False)]
    # default behaviour unchanged: suppressed findings are dropped
    assert [v.line for v in lint_file("demo.py", source=NOQA_SRC)] == [3]


def test_sarif_emits_suppression_objects():
    vs = lint_file("demo.py", source=NOQA_SRC, keep_suppressed=True)
    doc = to_sarif(vs, n_files=1)
    validate_sarif(doc)
    res = doc["runs"][0]["results"]
    assert res[0]["suppressions"] == [{"kind": "inSource"}]
    assert "suppressions" not in res[1]


def test_validator_rejects_bad_suppression_kind():
    vs = lint_file("demo.py", source=NOQA_SRC, keep_suppressed=True)
    doc = to_sarif(vs)
    doc["runs"][0]["results"][0]["suppressions"] = [{"kind": "whim"}]
    with pytest.raises(ValueError, match="suppression"):
        validate_sarif(doc)


def test_suppressed_dict_flag():
    vs = lint_file("demo.py", source=NOQA_SRC, keep_suppressed=True)
    assert vs[0].to_dict()["suppressed"] is True
    assert "suppressed" not in vs[1].to_dict()


def test_cli_sarif_keeps_suppressed_but_exit_is_active_only(tmp_path, capsys):
    f = tmp_path / "only_suppressed.py"
    f.write_text("import time\nt = time.time()  # noqa: ULF002\n")
    # every finding suppressed: SARIF still carries it, exit code is clean
    assert cli_main(["lint", "--format", "sarif", str(f)]) == 0
    doc = json.loads(capsys.readouterr().out)
    (res,) = doc["runs"][0]["results"]
    assert res["suppressions"] == [{"kind": "inSource"}]
    # text format never shows suppressed findings
    assert cli_main(["lint", str(f)]) == 0
    assert "ULF002" not in capsys.readouterr().out
