"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.machine.presets import IDEAL, OPL
from repro.mpi.universe import Universe


def run_ranks(n, entry, *, machine=IDEAL, argv=(), kills=(), hostfile=None,
              raise_task_failures=True, batch=None):
    """Run ``entry(ctx)`` on ``n`` ranks; returns (results, universe).

    ``kills`` is a sequence of (rank, time) fail-stop injections.
    ``batch`` pins the substrate path (None: universe default).
    """
    uni = Universe(machine, hostfile=hostfile, batch=batch)
    job = uni.launch(n, entry, argv)
    for rank, at in kills:
        uni.kill_rank(job, rank, at=at)
    uni.run(raise_task_failures=raise_task_failures)
    return job.results(), uni


@pytest.fixture
def ideal():
    return IDEAL


@pytest.fixture
def opl():
    return OPL
