"""End-to-end application behaviour: baselines, simulated losses, real
failures with reconstruction, metrics."""

import numpy as np
import pytest

from repro.core import (AppConfig, baseline_solve_time, choose_lost_grids,
                        plan_failures, run_app)
from repro.ft.failure_injection import Kill
from repro.machine.presets import IDEAL, OPL, RAIJIN


def cfg_for(code, **kw):
    defaults = dict(n=6, level=4, technique_code=code, steps=16,
                    diag_procs=2, checkpoint_count=4)
    defaults.update(kw)
    return AppConfig(**defaults)


# ---------------------------------------------------------------------------
# baselines
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("code,world", [("CR", 11), ("RC", 19), ("AC", 14)])
def test_baseline_runs_and_world_sizes(code, world):
    m = run_app(cfg_for(code), IDEAL)
    assert m.world_size == world
    assert m.lost_gids == []
    assert not m.real_failures
    assert np.isfinite(m.error_l1) and m.error_l1 < 1e-2
    assert m.steps == 16 and m.n == 6


def test_all_techniques_same_baseline_error():
    errs = {code: run_app(cfg_for(code), IDEAL).error_l1
            for code in ("CR", "RC", "AC")}
    assert errs["CR"] == pytest.approx(errs["RC"], rel=1e-12)
    assert errs["CR"] == pytest.approx(errs["AC"], rel=1e-12)


def test_combined_array_collection():
    m = run_app(cfg_for("AC", collect_arrays=True), IDEAL)
    assert m.combined is not None
    assert m.combined.shape == (65, 65)


def test_combination_beats_single_grid_accuracy():
    """The sparse-grid combination must beat its coarsest component."""
    from repro.pde import AdvectionProblem, SerialAdvectionSolver, l1
    m = run_app(cfg_for("CR", collect_arrays=True), IDEAL)
    prob = AdvectionProblem()
    s = SerialAdvectionSolver(prob, 3, 3, m.dt)
    s.step(16)
    coarse_err = l1(s.nodal(), s.exact_nodal())
    assert m.error_l1 < coarse_err


def test_wrong_launch_size_rejected():
    from repro.mpi import Universe
    from repro.core.app import app_main
    uni = Universe(IDEAL)
    job = uni.launch(5, app_main, argv=(cfg_for("CR"),))
    with pytest.raises(Exception):
        uni.run()


# ---------------------------------------------------------------------------
# simulated losses (Figs. 9/10 mode)
# ---------------------------------------------------------------------------
def test_cr_simulated_loss_recovers_exactly():
    base = run_app(cfg_for("CR"), IDEAL)
    m = run_app(cfg_for("CR", simulated_lost_gids=(2,)), IDEAL)
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
    assert m.lost_gids == [2]
    assert m.recompute_steps > 0


def test_rc_simulated_diagonal_loss_exact_copy():
    base = run_app(cfg_for("RC"), IDEAL)
    m = run_app(cfg_for("RC", simulated_lost_gids=(1,)), IDEAL)
    # replica copy is exact: error identical to baseline
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_rc_simulated_lower_loss_resample_approximate():
    base = run_app(cfg_for("RC"), IDEAL)
    m = run_app(cfg_for("RC", simulated_lost_gids=(4,)), IDEAL)
    assert m.error_l1 > base.error_l1  # resampling breaks cancellation


def test_ac_simulated_loss_moderate_error():
    base = run_app(cfg_for("AC"), IDEAL)
    m = run_app(cfg_for("AC", simulated_lost_gids=(1,)), IDEAL)
    assert base.error_l1 < m.error_l1 < 10 * base.error_l1
    # the lost grid's index cannot carry a combination coefficient
    from repro.sparsegrid import CombinationScheme
    lost_ix = CombinationScheme(6, 4, extra_layers=2)[1].index
    assert lost_ix not in m.coefficients


def test_ac_lost_extra_layer_grid_harmless():
    base = run_app(cfg_for("AC"), IDEAL)
    m = run_app(cfg_for("AC", simulated_lost_gids=(8,)), IDEAL)
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_multiple_simulated_losses():
    m = run_app(cfg_for("AC", simulated_lost_gids=(1, 3, 5)), IDEAL)
    assert m.lost_gids == [1, 3, 5]
    assert np.isfinite(m.error_l1)


def test_cr_checkpoint_accounting(opl):
    m = run_app(cfg_for("CR"), opl)
    assert m.checkpoint_writes == 3          # 4 segments, interior writes
    assert m.checkpoint_write_time == pytest.approx(3 * opl.t_io, rel=0.01)
    m2 = run_app(cfg_for("CR", simulated_lost_gids=(1,)), opl)
    assert m2.checkpoint_read_time > 0
    assert m2.t_recovery > 0


def test_raijin_cheaper_checkpoints_than_opl():
    t_opl = run_app(cfg_for("CR"), OPL).t_total
    t_raijin = run_app(cfg_for("CR"), RAIJIN).t_total
    assert t_raijin < t_opl / 10


# ---------------------------------------------------------------------------
# real failures
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_single_real_failure_recovers(code):
    cfg = cfg_for(code)
    t = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cfg, 1, max(t * 0.5, 1e-9), seed=4)
    m = run_app(cfg_for(code), OPL, kills=kills)
    assert m.real_failures
    assert m.n_failures == 1
    assert len(m.lost_gids) >= 1
    assert m.t_reconstruct > 0
    assert np.isfinite(m.error_l1)
    base = run_app(cfg_for(code), IDEAL)
    assert m.error_l1 < 100 * base.error_l1


@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_double_real_failure_recovers(code):
    cfg = cfg_for(code)
    t = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cfg, 2, max(t * 0.5, 1e-9), seed=7)
    m = run_app(cfg_for(code), OPL, kills=kills)
    assert m.n_failures == 2
    assert np.isfinite(m.error_l1)


def test_cr_real_failure_error_equals_baseline():
    """CR recovery is exact even for real mid-run failures."""
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR"), OPL, kills=[Kill(7, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
    assert m.recompute_steps > 0


def test_sequential_failures_different_segments():
    base = run_app(cfg_for("CR"), OPL)
    kills = [Kill(5, base.t_solve * 0.3), Kill(9, base.t_solve * 0.8)]
    m = run_app(cfg_for("CR"), OPL, kills=kills)
    assert m.n_failures == 2
    assert sorted(m.failed_ranks) == [5, 9]
    assert len(m.lost_gids) == 2
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_two_failures_cost_more_than_one(opl):
    cfg = cfg_for("AC", n=7, diag_procs=16, layout_mode="sweep", steps=8)
    t = baseline_solve_time(cfg, opl)
    m1 = run_app(cfg_for("AC", n=7, diag_procs=16, layout_mode="sweep",
                         steps=8), opl,
                 kills=plan_failures(cfg, 1, t * 0.5, seed=0))
    m2 = run_app(cfg_for("AC", n=7, diag_procs=16, layout_mode="sweep",
                         steps=8), opl,
                 kills=plan_failures(cfg, 2, t * 0.5, seed=0))
    assert m2.t_reconstruct > 5 * m1.t_reconstruct  # the beta-ULFM blow-up


def test_metrics_to_dict_roundtrip():
    m = run_app(cfg_for("AC", simulated_lost_gids=(1,)), IDEAL)
    d = m.to_dict()
    assert d["technique"] == "AC"
    assert "combined" not in d
    assert isinstance(next(iter(d["coefficients"])), str)
    assert m.t_app_excl_reconstruct == pytest.approx(
        m.t_total - m.t_reconstruct)


def test_compute_scale_multiplies_solve_time(opl):
    """At a large scale factor the (unscaled) communication time is noise
    and solve time is the scaled compute estimate."""
    cfg = cfg_for("AC", compute_scale=1000.0)
    est = cfg.estimated_solve_time(opl)
    t1000 = run_app(cfg, opl).t_solve
    assert t1000 == pytest.approx(est, rel=0.05)
    t1 = run_app(cfg_for("AC"), opl).t_solve
    assert t1000 > 50 * t1


def test_estimated_solve_time_is_compute_lower_bound(opl):
    """The analytic estimate covers compute only; the measured solve adds
    halo traffic and detection, so it brackets from below."""
    cfg = cfg_for("AC")
    est = cfg.estimated_solve_time(opl)
    measured = run_app(cfg_for("AC"), opl).t_solve
    assert est <= measured <= 20 * est


def test_auto_checkpoint_count(opl):
    cfg = cfg_for("CR", checkpoint_count=None, compute_scale=1e6)
    m = run_app(cfg, opl)
    assert m.checkpoint_writes >= 1


def test_spare_placement_through_app():
    from repro.ft import PLACE_SPARE
    cfg = cfg_for("AC", placement=PLACE_SPARE)
    t = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cfg, 1, max(t * 0.5, 1e-9), seed=2)
    m = run_app(cfg_for("AC", placement=PLACE_SPARE), OPL, kills=kills,
                n_spares=2)
    assert m.n_failures == 1
    assert np.isfinite(m.error_l1)


# ---------------------------------------------------------------------------
# rank-0 failure (the control rank is killable too)
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_rank_zero_failure_recovers(code):
    """Killing rank 0 must recover like any other rank: the loss set is
    an allgather union and the CR horizon a MAX-allreduce, so the
    re-spawned replacement — which joins with an empty failure record and
    no segment target — cannot poison either agreement."""
    base = run_app(cfg_for(code), OPL)
    m = run_app(cfg_for(code), OPL, kills=[Kill(0, base.t_solve * 0.6)])
    assert m.real_failures
    assert m.n_failures == 1
    assert 0 in m.failed_ranks
    assert len(m.lost_gids) >= 1
    assert np.isfinite(m.error_l1)


def test_cr_rank_zero_failure_error_equals_baseline():
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR"), OPL, kills=[Kill(0, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
    assert m.recompute_steps > 0
