"""Process layouts: the paper's 8/4/2/1 rule and the Table I sweep."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Layout
from repro.sparsegrid import CombinationScheme


def test_paper_layout_counts_fig9():
    """Fig. 9: 8 per diagonal (incl. duplicates), 4 lower, 2/1 extras."""
    cr = Layout.paper(CombinationScheme(13, 4), 8)
    assert cr.total_procs == 44                      # P_c
    rc = Layout.paper(CombinationScheme(13, 4, duplicates=True), 8)
    assert rc.total_procs == 76                      # P_r
    ac = Layout.paper(CombinationScheme(13, 4, extra_layers=2), 8)
    assert ac.total_procs == 49                      # P_a
    counts = [a.n_procs for a in ac.assignments]
    assert counts == [8, 8, 8, 8, 4, 4, 4, 2, 2, 1]


@pytest.mark.parametrize("p,total", [(4, 19), (8, 38), (16, 76), (32, 152),
                                     (64, 304)])
def test_sweep_layout_hits_table1_core_counts(p, total):
    layout = Layout.sweep(CombinationScheme(13, 4), p)
    assert layout.total_procs == total


def test_ranks_contiguous_and_rank0_is_controller():
    layout = Layout.paper(CombinationScheme(8, 4), 4)
    cursor = 0
    for a in layout.assignments:
        assert a.ranks == tuple(range(cursor, cursor + a.n_procs))
        cursor += a.n_procs
    assert layout.gid_of(0) == 0
    assert layout.root_rank(0) == 0


def test_gid_of_covers_every_rank():
    layout = Layout.paper(CombinationScheme(8, 4, duplicates=True), 4)
    for a in layout.assignments:
        for r in a.ranks:
            assert layout.gid_of(r) == a.gid
            assert r in layout.group_ranks(a.gid)


def test_grids_of_ranks():
    layout = Layout.paper(CombinationScheme(8, 4), 4)
    gids = layout.grids_of_ranks([0, 1, 5, 17])
    assert gids == sorted(set(gids))
    assert layout.gid_of(17) in gids


def test_conflict_pairs_forwarded():
    layout = Layout.paper(CombinationScheme(8, 4, duplicates=True), 4)
    assert layout.conflict_pairs_ranks() == \
        layout.scheme.rc_conflict_pairs()


def test_too_many_procs_for_grid_rejected():
    scheme = CombinationScheme(4, 4)  # smallest grids 2^1 x ...
    with pytest.raises(ValueError):
        Layout(scheme, {g.gid: 1000 for g in scheme.grids})


def test_zero_procs_rejected():
    scheme = CombinationScheme(8, 4)
    counts = {g.gid: 1 for g in scheme.grids}
    counts[0] = 0
    with pytest.raises(ValueError):
        Layout(scheme, counts)


def test_describe():
    layout = Layout.paper(CombinationScheme(8, 4), 2)
    text = layout.describe()
    assert "grid  0" in text and "11 processes" in text


@given(st.integers(1, 64).filter(lambda p: p & (p - 1) == 0))
@settings(max_examples=20)
def test_paper_rule_halves_per_layer(p):
    scheme = CombinationScheme(10, 4, duplicates=True, extra_layers=2)
    layout = Layout.paper(scheme, p)
    for a in layout.assignments:
        g = scheme[a.gid]
        assert a.n_procs == max(1, p >> g.layer)
    assert layout.total_procs == sum(a.n_procs for a in layout.assignments)
