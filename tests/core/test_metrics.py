"""RunMetrics bookkeeping."""

import pytest

from repro.core.metrics import RunMetrics
from repro.ft.reconstruct import ReconstructTimers


def test_absorb_timers_copies_every_field():
    t = ReconstructTimers(failed_list=1.0, reconstruct=2.0, shrink=0.5,
                          spawn=0.7, merge=0.1, agree=0.3, iterations=2,
                          total_failed=2, failed_ranks=[3, 5])
    m = RunMetrics()
    m.absorb_timers(t)
    assert m.t_detect == 1.0
    assert m.t_reconstruct == 2.0
    assert m.t_shrink == 0.5 and m.t_spawn == 0.7
    assert m.t_merge == 0.1 and m.t_agree == 0.3
    assert m.reconstruct_iterations == 2
    assert m.failed_ranks == [3, 5]
    assert m.n_failures == 2


def test_app_time_excl_reconstruct():
    m = RunMetrics(t_total=10.0, t_reconstruct=3.0)
    assert m.t_app_excl_reconstruct == pytest.approx(7.0)


def test_to_dict_stringifies_coefficient_keys_and_drops_arrays():
    m = RunMetrics(technique="AC", coefficients={(3, 5): 1.0, (4, 4): -1.0})
    m.combined = object()
    d = m.to_dict()
    assert "combined" not in d
    assert d["coefficients"] == {"(3, 5)": 1.0, "(4, 4)": -1.0}
    assert d["technique"] == "AC"


def test_defaults_are_safe():
    m = RunMetrics()
    import math
    assert math.isnan(m.error_l1)
    assert m.lost_gids == []
    assert not m.real_failures
