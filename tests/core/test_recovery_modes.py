"""Shrink-in-place and non-collective repair: end-to-end behaviour of the
two non-respawning recovery modes, plus the strategy-object contracts."""

import numpy as np
import pytest

from repro.core import AppConfig, run_app
from repro.ft import PLACE_SPARE, STRATEGIES, strategy_by_mode
from repro.ft.failure_injection import Kill
from repro.machine.presets import IDEAL, OPL


def cfg_for(code, **kw):
    defaults = dict(n=6, level=4, technique_code=code, steps=16,
                    diag_procs=2, checkpoint_count=4)
    defaults.update(kw)
    return AppConfig(**defaults)


# With the defaults above the layout groups are
#   grid 0: ranks (0, 1)   grid 1: (2, 3)   grid 2: (4, 5)   grid 3: (6, 7)
#   grid 4: (8,)           grid 5: (9,)     grid 6: (10,)
# so rank 7 loses grid 3, ranks 5+7 lose grids 2+3, and killing both of
# (6, 7) wipes grid 3 entirely.


# ---------------------------------------------------------------------------
# strategy-object contracts
# ---------------------------------------------------------------------------
def test_registry_and_lookup():
    assert set(STRATEGIES) == {"respawn", "shrink", "nc"}
    for mode, s in STRATEGIES.items():
        assert strategy_by_mode(mode) is s
    with pytest.raises(ValueError):
        strategy_by_mode("reboot")


def test_strategy_flags():
    assert STRATEGIES["respawn"].needs_placement()
    assert STRATEGIES["nc"].needs_placement()
    assert not STRATEGIES["shrink"].needs_placement()
    assert STRATEGIES["respawn"].preserves_world
    assert STRATEGIES["nc"].preserves_world
    assert not STRATEGIES["shrink"].preserves_world


def test_cost_estimate_shapes():
    """Shrink never spawns or merges; non-collective repair adds the
    world-readmission bookkeeping on top of the respawn operations."""
    costs = {mode: s.cost_estimate(OPL, 11, 1)
             for mode, s in STRATEGIES.items()}
    assert set(costs["respawn"]) == {"revoke", "shrink", "spawn", "merge",
                                     "agree"}
    assert set(costs["shrink"]) == {"revoke", "shrink", "agree"}
    assert set(costs["nc"]) == {"revoke", "shrink", "spawn", "merge",
                                "agree", "readmit"}
    assert sum(costs["shrink"].values()) < sum(costs["respawn"].values())


@pytest.mark.parametrize("mode", ["shrink", "nc"])
def test_modes_require_1d_decomposition(mode):
    with pytest.raises(ValueError, match="1d"):
        strategy_by_mode(mode).validate_config(
            cfg_for("CR", decomposition="2d", recovery_mode=mode))


# ---------------------------------------------------------------------------
# shrink-in-place
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_shrink_single_failure_recovers(code):
    cfg = cfg_for(code, recovery_mode="shrink")
    base = run_app(cfg_for(code), OPL)
    m = run_app(cfg, OPL, kills=[Kill(7, base.t_solve * 0.6)])
    assert m.recovery_mode == "shrink"
    assert m.failed_ranks == [7]
    assert m.lost_gids == [3]
    assert m.t_spawn == 0.0 and m.t_merge == 0.0  # nobody respawned
    assert np.isfinite(m.error_l1)


def test_shrink_cr_error_equals_baseline():
    """Checkpoint restart stays exact across the re-balanced survivor
    decomposition."""
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR", recovery_mode="shrink"), OPL,
                kills=[Kill(7, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_shrink_survivor_grids_bit_identical():
    """Redistributing a survivor grid over fewer ranks must not perturb a
    single bit of its field — the combined solution matches exactly."""
    base = run_app(cfg_for("CR", collect_arrays=True), OPL)
    m = run_app(cfg_for("CR", collect_arrays=True, recovery_mode="shrink"),
                OPL, kills=[Kill(7, base.t_solve * 0.6)])
    assert np.array_equal(base.combined, m.combined)


def test_shrink_rank_zero_failure():
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR", recovery_mode="shrink"), OPL,
                kills=[Kill(0, base.t_solve * 0.6)])
    assert m.failed_ranks == [0]
    assert m.lost_gids == [0]
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_shrink_simultaneous_multi_grid_loss():
    base = run_app(cfg_for("CR"), OPL)
    at = base.t_solve * 0.6
    m = run_app(cfg_for("CR", recovery_mode="shrink"), OPL,
                kills=[Kill(5, at), Kill(7, at)])
    assert sorted(m.failed_ranks) == [5, 7]
    assert sorted(m.lost_gids) == [2, 3]
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_shrink_needs_no_spares_or_placement():
    """Shrink never places replacements: a spare-requiring placement
    policy with zero spares — fatal in respawn mode — is irrelevant."""
    cfg = cfg_for("CR", recovery_mode="shrink", placement=PLACE_SPARE)
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg, OPL, kills=[Kill(7, base.t_solve * 0.6)], n_spares=0)
    assert m.failed_ranks == [7]
    assert np.isfinite(m.error_l1)


# ---------------------------------------------------------------------------
# non-collective repair
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_nc_single_failure_recovers(code):
    base = run_app(cfg_for(code), OPL)
    m = run_app(cfg_for(code, recovery_mode="nc"), OPL,
                kills=[Kill(7, base.t_solve * 0.6)])
    assert m.recovery_mode == "nc"
    assert m.failed_ranks == [7]
    assert m.lost_gids == [3]
    assert m.world_size == base.world_size  # replacement readmitted
    assert np.isfinite(m.error_l1)


def test_nc_cr_error_equals_baseline():
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR", recovery_mode="nc"), OPL,
                kills=[Kill(7, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_nc_repair_off_critical_path():
    """Only the failed sub-grid's communicator is rebuilt; the unaffected
    grids never stop, so the repair — which did happen, and was paid for —
    leaves the critical-path total where the baseline put it."""
    base = run_app(cfg_for("CR"), OPL)
    at = base.t_solve * 0.5
    nc = run_app(cfg_for("CR", recovery_mode="nc"), OPL, kills=[Kill(7, at)])
    assert nc.t_reconstruct > 0.0
    assert nc.t_total == pytest.approx(base.t_total, rel=1e-3)


def test_nc_rank_zero_failure():
    base = run_app(cfg_for("CR"), OPL)
    m = run_app(cfg_for("CR", recovery_mode="nc"), OPL,
                kills=[Kill(0, base.t_solve * 0.6)])
    assert m.failed_ranks == [0]
    assert m.lost_gids == [0]
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_nc_simultaneous_multi_grid_loss():
    """Two grids repair concurrently, each inside its own communicator."""
    base = run_app(cfg_for("CR"), OPL)
    at = base.t_solve * 0.6
    m = run_app(cfg_for("CR", recovery_mode="nc"), OPL,
                kills=[Kill(5, at), Kill(7, at)])
    assert sorted(m.failed_ranks) == [5, 7]
    assert sorted(m.lost_gids) == [2, 3]
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_nc_full_grid_loss_is_fatal():
    """Non-collective repair is rebuilt *by the survivors of the grid*;
    a grid that lost every member has none, and the failure must say so
    rather than deadlock."""
    base = run_app(cfg_for("CR"), OPL)
    at = base.t_solve * 0.6
    with pytest.raises(Exception, match="lost every member"):
        run_app(cfg_for("CR", recovery_mode="nc"), OPL,
                kills=[Kill(6, at), Kill(7, at)])


# ---------------------------------------------------------------------------
# mode bookkeeping
# ---------------------------------------------------------------------------
def test_default_mode_is_respawn():
    m = run_app(cfg_for("CR"), IDEAL)
    assert m.recovery_mode == "respawn"
    assert "recovery_mode" in m.to_dict()


# ---------------------------------------------------------------------------
# shrink-in-place: full-grid loss migrates onto a donor (orphan adoption)
# ---------------------------------------------------------------------------
def small_cfg(code, **kw):
    """n=5/level=3 layout: grids 3 and 4 are single-member (ranks 6, 7),
    so killing rank 7 loses grid 4 entirely."""
    defaults = dict(n=5, level=3, technique_code=code, steps=4,
                    diag_procs=2, checkpoint_count=2)
    defaults.update(kw)
    return AppConfig(**defaults)


def test_shrink_full_grid_loss_adopts_and_stays_exact():
    """A grid that lost every member migrates onto a donor rank, which
    restores it from checkpoint: CR stays exact."""
    base = run_app(small_cfg("CR"), OPL)
    m = run_app(small_cfg("CR", recovery_mode="shrink"), OPL,
                kills=[Kill(7, base.t_solve * 0.6)])
    assert m.failed_ranks == [7]
    assert 4 in m.lost_gids           # the orphan
    assert len(m.lost_gids) == 2      # ...plus the donor's contracted grid
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_shrink_full_grid_loss_rc_recovers_via_plan():
    """Under RC the adopted orphan refills through the replica/resample
    plan like any lost grid."""
    base = run_app(small_cfg("RC"), OPL)
    m = run_app(small_cfg("RC", recovery_mode="shrink"), OPL,
                kills=[Kill(7, base.t_solve * 0.6)])
    assert m.failed_ranks == [7]
    assert 4 in m.lost_gids
    assert np.isfinite(m.error_l1) and m.error_l1 < 1e-1


def test_shrink_full_grid_loss_ac_drops_grid():
    """AC excludes lost grids from the combination, so no donor is taken
    (a healthy grid's data would be destroyed for nothing)."""
    cfg = cfg_for("AC", recovery_mode="shrink")
    base = run_app(cfg_for("AC"), OPL)
    at = base.t_solve * 0.6
    m = run_app(cfg, OPL, kills=[Kill(9, at)])  # grid 5: sole member
    assert m.lost_gids == [5]                   # no donor grid joins it
    assert np.isfinite(m.error_l1)


def test_survivor_view_adoption_is_deterministic():
    from repro.core.layout import SurvivorView

    cfg = small_cfg("CR")
    base = cfg.layout()
    members = [r for r in range(base.total_procs) if r != 7]
    v = SurvivorView(base, members, adopt_orphans=True)
    assert v.adoptions == dict(SurvivorView(base, members,
                                            adopt_orphans=True).adoptions)
    orphan_ranks = v.group_ranks(4)
    assert len(orphan_ranks) == 1     # the donor
    donor_gid = v.adoptions[4]
    # donor came from a multi-member group, which shrank by one
    assert len(v.group_ranks(donor_gid)) == \
        len(base.group_ranks(donor_gid)) - 1
    # every rank still belongs to exactly one grid
    seen = [g for a in v.assignments for g in a.ranks]
    assert sorted(seen) == list(range(len(members)))


def test_survivor_view_no_donor_raises():
    from repro.core.layout import SurvivorView

    cfg = small_cfg("CR", diag_procs=1)   # every grid single-member
    base = cfg.layout()
    members = [r for r in range(base.total_procs) if r != 2]
    with pytest.raises(RuntimeError, match="cannot re-balance"):
        SurvivorView(base, members, adopt_orphans=True)
