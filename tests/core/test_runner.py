"""Run orchestration helpers."""

import pytest

from repro.core import (AppConfig, baseline_solve_time, choose_lost_grids,
                        make_universe, plan_failures)
from repro.machine.presets import IDEAL, OPL


def test_make_universe_sizes_hostfile():
    cfg = AppConfig(n=6, level=4, technique_code="RC", diag_procs=2)
    uni, total = make_universe(cfg, OPL, n_spares=2)
    assert total == cfg.layout().total_procs
    regular = len(uni.hostfile.regular_hosts)
    assert regular * OPL.cores_per_node >= total
    assert len(uni.hostfile.spare_hosts) == 2


def test_plan_failures_protects_rank0_and_pairs():
    cfg = AppConfig(n=6, level=4, technique_code="RC", diag_procs=2)
    layout = cfg.layout()
    pairs = layout.conflict_pairs_ranks()
    for seed in range(30):
        kills = plan_failures(cfg, 3, at=1.0, seed=seed)
        ranks = [k.rank for k in kills]
        assert 0 not in ranks
        grids = {layout.gid_of(r) for r in ranks}
        for a, b in pairs:
            assert not (a in grids and b in grids)
        assert all(k.at == 1.0 for k in kills)


def test_plan_failures_cr_unconstrained_pairs():
    cfg = AppConfig(n=6, level=4, technique_code="CR", diag_procs=2)
    kills = plan_failures(cfg, 2, at=0.5, seed=0)
    assert len(kills) == 2


def test_choose_lost_grids_respects_rc_conflicts():
    cfg = AppConfig(n=6, level=4, technique_code="RC", diag_procs=2)
    conflicts = cfg.scheme().rc_conflict_pairs()
    for seed in range(30):
        lost = choose_lost_grids(cfg, 3, seed=seed)
        assert len(lost) == 3
        for a, b in conflicts:
            assert not (a in lost and b in lost)


def test_choose_lost_grids_deterministic():
    cfg = AppConfig(n=6, level=4, technique_code="AC", diag_procs=2)
    assert choose_lost_grids(cfg, 2, seed=5) == \
        choose_lost_grids(cfg, 2, seed=5)


def test_baseline_solve_time_positive_on_real_machine():
    cfg = AppConfig(n=6, level=4, technique_code="AC", diag_procs=2, steps=8)
    assert baseline_solve_time(cfg, OPL) > 0
    assert baseline_solve_time(cfg, IDEAL) == 0.0


def test_choose_lost_grids_for_scheme_matches_config_wrapper():
    from repro.core import choose_lost_grids_for_scheme
    for code in ("CR", "RC", "AC"):
        cfg = AppConfig(n=7, level=4, technique_code=code, diag_procs=2)
        scheme = cfg.scheme()
        for n_lost in (1, 3, 5):
            for seed in range(5):
                assert choose_lost_grids(cfg, n_lost, seed=seed) == \
                    choose_lost_grids_for_scheme(scheme, code, n_lost,
                                                 seed=seed)


def test_cached_scheme_shares_instances():
    from repro.sparsegrid import cached_scheme
    a = AppConfig(n=7, level=4, technique_code="RC")
    b = AppConfig(n=7, level=4, technique_code="RC", steps=99)
    assert a.scheme() is b.scheme()
    assert a.scheme() is cached_scheme(7, 4, duplicates=True)
    # ... and the identity-keyed layout cache collapses with them
    assert a.layout() is AppConfig(n=7, level=4,
                                   technique_code="RC").layout()
