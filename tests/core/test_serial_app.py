"""Serial reference pipeline, and its agreement with the MPI application."""

import numpy as np
import pytest

from repro.core import AppConfig, run_app
from repro.core.serial_app import run_serial, solve_scheme_grids
from repro.machine.presets import IDEAL
from repro.pde import AdvectionProblem
from repro.sparsegrid import CombinationScheme


def test_serial_baseline_reasonable():
    r = run_serial(n=6, level=4, technique_code="CR", steps=16)
    assert r.error_l1 < 1e-2
    assert r.lost_gids == ()
    assert sum(r.coefficients.values()) == pytest.approx(1.0)


def test_solve_scheme_grids_shares_duplicates():
    scheme = CombinationScheme(6, 4, duplicates=True)
    data = solve_scheme_grids(scheme, AdvectionProblem(), 4, 1e-3)
    for d in scheme.diagonal:
        assert data[d.gid] is data[d.partner]


@pytest.mark.parametrize("code,lost", [
    ("CR", ()), ("RC", ()), ("AC", ()),
    ("CR", (2,)), ("CR", (0, 3)),
    ("RC", (1,)), ("RC", (4,)), ("RC", (7,)), ("RC", (4, 9)),
    ("AC", (1,)), ("AC", (5,)), ("AC", (1, 3)), ("AC", (8,)),
])
def test_serial_matches_parallel_app(code, lost):
    """The distributed app and the serial pipeline implement the same
    mathematics: errors agree to rounding."""
    serial = run_serial(n=6, level=4, technique_code=code, steps=16,
                        lost_gids=lost)
    cfg = AppConfig(n=6, level=4, technique_code=code, steps=16,
                    diag_procs=2, checkpoint_count=4,
                    simulated_lost_gids=tuple(lost))
    parallel = run_app(cfg, IDEAL)
    assert serial.error_l1 == pytest.approx(parallel.error_l1, rel=1e-10)
    assert serial.error_linf == pytest.approx(parallel.error_linf, rel=1e-10)


def test_serial_cr_exact_for_any_loss():
    base = run_serial(n=6, level=4, technique_code="CR", steps=16)
    for lost in [(1,), (0, 2, 4), (5, 6)]:
        r = run_serial(n=6, level=4, technique_code="CR", steps=16,
                       lost_gids=lost)
        assert r.error_l1 == pytest.approx(base.error_l1, rel=1e-12)


def test_serial_collect_arrays():
    r = run_serial(n=6, level=4, technique_code="AC", steps=8,
                   collect_arrays=True)
    assert r.combined.shape == (65, 65)
    r2 = run_serial(n=6, level=4, technique_code="AC", steps=8)
    assert r2.combined is None


def test_serial_custom_target_grid():
    r = run_serial(n=6, level=4, technique_code="CR", steps=8,
                   target=(5, 5), collect_arrays=True)
    assert r.combined.shape == (33, 33)


def test_serial_extra_layers_config():
    r1 = run_serial(n=6, level=4, technique_code="AC", steps=8,
                    extra_layers=1, lost_gids=(1,))
    r2 = run_serial(n=6, level=4, technique_code="AC", steps=8,
                    extra_layers=2, lost_gids=(1,))
    assert np.isfinite(r1.error_l1) and np.isfinite(r2.error_l1)
