"""Experiment harnesses: small runs + the paper's shape claims."""

import pytest

from repro.experiments.fig8 import Fig8Point, format_fig8, run_fig8
from repro.experiments.fig9 import (Fig9Point, format_fig9, recovery_overhead,
                                    run_fig9)
from repro.experiments.fig10 import Fig10Point, format_fig10, run_fig10
from repro.experiments.fig11 import Fig11Point, format_fig11, run_fig11
from repro.experiments.report import (check_monotone_increasing, format_table,
                                      geometric_mean, series_summary)
from repro.experiments.table1 import (PAPER_TABLE1, Table1Row, format_table1,
                                      run_table1)
from repro.machine.presets import OPL


# ---------------------------------------------------------------------------
# report helpers
# ---------------------------------------------------------------------------
def test_format_table_aligns():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(l) == len(lines[0]) for l in lines[1:])


def test_series_summary():
    assert series_summary("s", [1, 2], [0.5, 1.5]) == "s: 1:0.5, 2:1.5"


def test_check_monotone():
    assert check_monotone_increasing([1, 2, 3])
    assert not check_monotone_increasing([3, 1])
    assert check_monotone_increasing([3.0, 2.9], slack=0.05)


def test_check_monotone_negative_values():
    """Slack is relative to |a|: the old ``a * (1 - slack)`` form demanded
    *more* of successors of negative values, rejecting monotone series."""
    assert check_monotone_increasing([-3.0, -2.0, -1.0], slack=0.05)
    assert check_monotone_increasing([-10.0, -10.5], slack=0.1)
    assert not check_monotone_increasing([-10.0, -12.0], slack=0.1)
    assert not check_monotone_increasing([-1.0, -3.0], slack=0.05)


def test_geometric_mean():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
    assert geometric_mean([]) == 0.0
    with pytest.warns(RuntimeWarning, match="dropped 1 non-positive"):
        assert geometric_mean([0.0, 2.0]) == pytest.approx(2.0)


def test_geometric_mean_strict_raises():
    with pytest.raises(ValueError, match="non-positive"):
        geometric_mean([0.0, 2.0], strict=True)
    # all-positive input stays silent in both modes
    assert geometric_mean([2.0, 8.0], strict=True) == pytest.approx(4.0)


# ---------------------------------------------------------------------------
# Table I
# ---------------------------------------------------------------------------
def test_table1_reproduces_paper_exactly():
    rows = run_table1(diag_procs=(16,), steps=8)
    row = rows[0]
    assert row.cores == 76
    spawn, shrink, agree, merge = PAPER_TABLE1[76]
    assert row.spawn == pytest.approx(spawn, rel=0.02)
    assert row.shrink == pytest.approx(shrink, rel=0.02)
    assert row.agree == pytest.approx(agree, rel=0.05)
    assert row.merge == pytest.approx(merge, rel=0.05)
    text = format_table1(rows)
    assert "76" in text and "60.75" in text


# ---------------------------------------------------------------------------
# Fig. 8
# ---------------------------------------------------------------------------
def test_fig8_two_failures_dominate_and_grow():
    pts = run_fig8(diag_procs=(8, 16), failure_counts=(1, 2), steps=8)
    by = {(p.cores, p.n_failures): p for p in pts}
    # growth with cores
    assert by[(76, 2)].t_reconstruct > by[(38, 2)].t_reconstruct
    assert by[(76, 1)].t_reconstruct > 0
    # 2-failure blow-up (the paper's "unsatisfactory" result)
    assert by[(76, 2)].t_reconstruct > 10 * by[(76, 1)].t_reconstruct
    assert by[(76, 2)].t_failed_list > 10 * by[(76, 1)].t_failed_list
    assert "reconstruct" in format_fig8(pts)


# ---------------------------------------------------------------------------
# Fig. 9
# ---------------------------------------------------------------------------
def test_fig9_opl_ordering_and_loss_independence():
    pts = run_fig9(n=8, steps=8, diag_procs=4, lost_counts=(1, 3),
                   seeds=(0, 1), machines=(OPL,))
    by = {(p.technique, p.n_lost): p for p in pts}
    # Fig. 9a ordering: CR >> RC > AC
    assert by[("CR", 1)].recovery_overhead > 10 * by[("RC", 1)].recovery_overhead
    assert by[("RC", 1)].recovery_overhead > by[("AC", 1)].recovery_overhead
    # recovery overhead nearly independent of the number of lost grids
    cr1, cr3 = by[("CR", 1)], by[("CR", 3)]
    assert cr3.recovery_overhead < 2 * cr1.recovery_overhead
    assert "recovery" in format_fig9(pts)


def test_fig9_process_time_normalisation_charges_extra_procs():
    pts = run_fig9(n=6, steps=16, diag_procs=4, lost_counts=(1,),
                   seeds=(0,), machines=(OPL,))
    rc = next(p for p in pts if p.technique == "RC")
    # RC runs P_r > P_c processes, so its normalised overhead exceeds raw
    assert rc.process_time_overhead > rc.recovery_overhead


# ---------------------------------------------------------------------------
# Fig. 10
# ---------------------------------------------------------------------------
def test_fig10_shapes():
    pts = run_fig10(n=6, steps=16, lost_counts=(0, 1, 3), seeds=(0, 1, 2))
    by = {(p.technique, p.n_lost): p for p in pts}
    # CR exact: flat
    assert by[("CR", 3)].error_l1 == pytest.approx(
        by[("CR", 0)].error_l1, rel=1e-9)
    # RC/AC degrade with losses
    assert by[("RC", 3)].error_l1 > by[("RC", 0)].error_l1
    assert by[("AC", 3)].error_l1 > by[("AC", 0)].error_l1
    # all errors finite and within a sane band
    assert all(p.error_l1 < 1.0 for p in pts)
    assert "l1 error" in format_fig10(pts)


def test_fig10_baseline_ratio_one():
    pts = run_fig10(n=6, steps=16, lost_counts=(0,), seeds=(0,))
    assert all(p.ratio == pytest.approx(1.0) for p in pts)


# ---------------------------------------------------------------------------
# Fig. 11
# ---------------------------------------------------------------------------
def test_fig11_orderings():
    pts = run_fig11(n=6, steps=16, diag_procs=(2, 4), failure_counts=(0, 2),
                    seeds=(0,))
    by = {(p.technique, p.n_failures, p.cores): p for p in pts}
    # CR most costly at zero failures (checkpoint writes)
    cr0 = by[("CR", 0, 11)].t_total
    ac0 = by[("AC", 0, 14)].t_total
    assert cr0 > ac0
    # two failures cost more than none for AC/RC (for CR at this small
    # scale the skipped checkpoint write can offset the repair cost, so
    # only the reconstruction time itself is asserted)
    assert by[("AC", 2, 25)].t_total > by[("AC", 0, 25)].t_total
    assert by[("RC", 2, 38)].t_total > by[("RC", 0, 38)].t_total
    assert by[("CR", 2, 22)].t_total > 0
    # efficiency column normalised to 1 at the series start
    firsts = [p for p in pts if p.cores in (11, 19, 14)]
    assert all(p.efficiency == pytest.approx(1.0) for p in firsts)
    assert "efficiency" in format_fig11(pts)


# ---------------------------------------------------------------------------
# recovery-mode comparison
# ---------------------------------------------------------------------------
def test_modes_kill_plan_is_deterministic_and_portable():
    from repro.core import AppConfig
    from repro.experiments.modes import mode_kill_plan

    cfg = AppConfig(n=6, level=4, technique_code="CR", steps=16,
                    diag_procs=2, checkpoint_count=4)
    plan = mode_kill_plan(cfg, 2, at=1.0)
    assert plan == mode_kill_plan(cfg, 2, at=1.0)
    ranks = [k.rank for k in plan]
    assert len(set(ranks)) == 2
    assert 0 not in ranks                      # rank 0 survives in every mode
    assert all(k.at == 1.0 for k in plan)      # simultaneous
    layout = cfg.layout()
    gids = [g for g in range(7) for r in ranks
            if r in layout.group_ranks(g)]
    assert len(set(gids)) == 2                 # distinct grids
    # each hit grid keeps a survivor (nc-mode requirement)
    assert all(len(layout.group_ranks(g)) >= 2 for g in gids)


def test_modes_kill_plan_rejects_oversized_requests():
    from repro.core import AppConfig
    from repro.experiments.modes import mode_kill_plan

    cfg = AppConfig(n=6, level=4, technique_code="CR", steps=16,
                    diag_procs=2, checkpoint_count=4)
    with pytest.raises(ValueError, match="eligible"):
        mode_kill_plan(cfg, 5, at=1.0)  # only four multi-member grids


def test_modes_kill_plan_avoids_rc_replica_pairs():
    from repro.core import AppConfig
    from repro.experiments.modes import mode_kill_plan

    cfg = AppConfig(n=6, level=4, technique_code="RC", steps=16,
                    diag_procs=2, checkpoint_count=4)
    layout = cfg.layout()
    conflicts = set(map(tuple, cfg.scheme().rc_conflict_pairs()))
    plan = mode_kill_plan(cfg, 2, at=1.0)
    gids = sorted(g for k in plan
                  for g in range(len(cfg.scheme().grids))
                  if k.rank in layout.group_ranks(g))
    assert tuple(gids) not in conflicts


def test_modes_experiment_shapes():
    from repro.experiments.modes import format_modes, run_modes

    pts = run_modes(failure_counts=(1,))
    by = {(p.mode, p.technique, p.n_failures): p for p in pts}
    # a baseline row and a killed row per (mode, technique)
    assert len(pts) == 18
    for mode in ("respawn", "shrink", "nc"):
        for code in ("CR", "RC", "AC"):
            assert by[(mode, code, 0)].overhead == pytest.approx(1.0)
    # shrink skips spawn+merge entirely: cheapest repair
    assert by[("shrink", "CR", 1)].t_reconstruct < \
        by[("respawn", "CR", 1)].t_reconstruct
    # non-collective repair stays off the critical path
    assert by[("nc", "CR", 1)].overhead == pytest.approx(1.0, rel=1e-3)
    # CR is exact in every mode
    for mode in ("respawn", "shrink", "nc"):
        assert by[(mode, "CR", 1)].error_l1 == pytest.approx(
            by[(mode, "CR", 0)].error_l1, rel=1e-9)
    text = format_modes(pts)
    assert "mode" in text and "shrink" in text and "nc" in text
