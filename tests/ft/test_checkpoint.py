"""Checkpoint/Restart machinery: Disk versioning, coordinated restore."""

import numpy as np
import pytest

from repro.ft import (CheckpointStats, Disk, checkpoint_interval_steps,
                      optimal_checkpoint_count, paper_eq2_checkpoint_count,
                      restore_checkpoint, write_checkpoint)
from repro.pde import AdvectionProblem, DistributedAdvectionSolver

from ..conftest import run_ranks as run

PROB = AdvectionProblem()


def test_disk_versioned_by_step():
    d = Disk()
    for step in (4, 8, 12):
        d.write(1, 0, {"u": np.zeros(2), "step_count": step,
                       "level_x": 3, "level_y": 3})
    assert d.available_steps(1, 0) == (4, 8, 12)
    assert d.latest_step(1, 0) == 12
    snap = d.read(1, 0, 8)
    assert snap["step_count"] == 8
    assert d.read(1, 0, 99) is None
    assert d.latest_step(9, 9) is None


def test_disk_history_bounded():
    d = Disk()
    for step in range(10):
        d.write(0, 0, {"u": np.zeros(1), "step_count": step,
                       "level_x": 1, "level_y": 1})
    assert len(d.available_steps(0, 0)) == Disk.KEEP
    assert d.latest_step(0, 0) == 9


def test_disk_read_returns_owned_copy():
    """Regression: ``Disk.read`` used to return a shallow copy whose ``u``
    aliased the stored array — a caller stepping in place after a restore
    corrupted the checkpoint it had just read."""
    d = Disk()
    d.write(0, 0, {"u": np.arange(4.0), "step_count": 1,
                   "level_x": 2, "level_y": 2})
    first = d.read(0, 0, 1)
    first["u"][:] = -999.0        # simulate in-place stepping post-restore
    second = d.read(0, 0, 1)
    assert np.array_equal(second["u"], np.arange(4.0))
    assert second["u"] is not first["u"]


def test_disk_write_detaches_from_caller_array():
    """The store must also own its copy on write: the caller keeps
    stepping its solver array after a checkpoint."""
    d = Disk()
    u = np.arange(4.0)
    d.write(0, 0, {"u": u, "step_count": 1, "level_x": 2, "level_y": 2})
    u[:] = 7.0                    # caller continues stepping in place
    assert np.array_equal(d.read(0, 0, 1)["u"], np.arange(4.0))


def test_disk_counters():
    d = Disk()
    d.write(0, 0, {"u": np.zeros(4), "step_count": 1,
                   "level_x": 1, "level_y": 1})
    d.read(0, 0, 1)
    assert d.writes == 1 and d.reads == 1 and d.bytes_written == 32


def test_optimal_checkpoint_count_young():
    # interval = sqrt(2 * t_io * mtbf); count = run / interval
    assert optimal_checkpoint_count(100.0, 2.0, mtbf=50.0) == \
        round(100.0 / (2.0 * 50.0 * 2.0) ** 0.5)
    assert optimal_checkpoint_count(10.0, 0.0) == 1
    assert optimal_checkpoint_count(1e-9, 3.52) == 1   # never zero


def test_optimal_count_scales_with_disk_speed():
    fast = optimal_checkpoint_count(100.0, 0.03)
    slow = optimal_checkpoint_count(100.0, 3.52)
    assert fast > slow


def test_paper_eq2_literal():
    assert paper_eq2_checkpoint_count(35.2, 3.52) == 10
    assert paper_eq2_checkpoint_count(1.0, 0.0) == 1
    assert paper_eq2_checkpoint_count(0.5, 3.52) == 1


def test_checkpoint_interval_steps():
    assert checkpoint_interval_steps(100, 4) == 25
    assert checkpoint_interval_steps(10, 0) == 10
    assert checkpoint_interval_steps(7, 3) == 2


def test_write_restore_roundtrip_charges_io(opl):
    disk = Disk()

    async def main(ctx):
        stats = CheckpointStats()
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        await sol.step(3)
        await write_checkpoint(ctx, disk, 0, ctx.comm.rank, sol, stats)
        saved = sol.u.copy()
        await sol.step(3)
        restored = await restore_checkpoint(ctx, disk, 0, ctx.comm, sol,
                                            stats)
        assert restored == 3
        assert np.allclose(sol.u, saved)
        assert stats.writes == 1
        assert stats.write_time >= opl.t_io
        assert stats.read_time > 0
        return ctx.wtime()

    res, _ = run(2, main, machine=opl)
    assert res[0] >= opl.t_io


def test_coordinated_restore_rolls_back_to_common_step():
    """One member missed the last checkpoint round: the whole group must
    restore the latest *common* step."""
    disk = Disk()

    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        await sol.step(4)
        await write_checkpoint(ctx, disk, 0, ctx.comm.rank, sol)
        await sol.step(4)
        if ctx.rank == 0:  # rank 1 "died" before writing round 2
            await write_checkpoint(ctx, disk, 0, ctx.comm.rank, sol)
        restored = await restore_checkpoint(ctx, disk, 0, ctx.comm, sol)
        return (restored, sol.step_count)

    res, _ = run(2, main)
    assert res == [(4, 4), (4, 4)]


def test_restore_step_rerestore_bit_identical():
    """Restoring, stepping (in place, via the ``*_into`` kernels), and
    restoring again must give bit-identical state both times — the
    aliasing bug made the second restore return post-failure garbage."""
    disk = Disk()

    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        await sol.step(3)
        await write_checkpoint(ctx, disk, 0, ctx.comm.rank, sol)
        await restore_checkpoint(ctx, disk, 0, ctx.comm, sol)
        first = sol.u.copy()
        await sol.step(5)          # mutate the restored array in place
        await restore_checkpoint(ctx, disk, 0, ctx.comm, sol)
        assert sol.step_count == 3
        return np.array_equal(first, sol.u)  # bit-identical, not allclose

    res, _ = run(2, main)
    assert res == [True, True]


def test_restore_without_any_checkpoint_resets_to_initial():
    disk = Disk()

    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        u0 = sol.u.copy()
        await sol.step(5)
        restored = await restore_checkpoint(ctx, disk, 0, ctx.comm, sol)
        assert restored == 0
        assert np.allclose(sol.u, u0)
        return sol.step_count

    res, _ = run(2, main)
    assert res == [0, 0]
