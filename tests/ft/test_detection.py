"""Failure detection and identification (Figs. 4, 6)."""

import pytest

from repro.ft import failed_procs_list, make_error_handler
from repro.mpi import MPIError, ProcFailedError

from ..conftest import run_ranks as run


def test_failed_procs_list_identifies_kills():
    async def main(ctx):
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
        except ProcFailedError:
            pass
        ctx.comm.revoke()
        shrunk = await ctx.comm.shrink()
        return failed_procs_list(ctx.comm, shrunk)

    res, _ = run(6, main, kills=[(2, 0.5), (4, 0.5)],
                 raise_task_failures=False)
    assert res[0] == ([2, 4], 2)
    assert res[1] == ([2, 4], 2)


def test_failed_procs_list_empty_when_identical():
    async def main(ctx):
        shrunk = await ctx.comm.shrink()
        return failed_procs_list(ctx.comm, shrunk)

    res, _ = run(3, main)
    assert res[0] == ([], 0)


def test_error_handler_acks_failures():
    seen = []

    async def main(ctx):
        handler = make_error_handler(
            lambda comm, group, exc: seen.append((ctx.rank, group.size)))
        ctx.comm.set_errhandler(handler)
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
        except MPIError:
            pass
        # the handler ran failure_ack: the acked group is queryable now
        return ctx.comm.failure_get_acked().size

    res, _ = run(3, main, kills=[(1, 0.5)], raise_task_failures=False)
    assert res[0] == 1 and res[2] == 1
    assert (0, 1) in seen and (2, 1) in seen


def test_error_handler_without_sink():
    async def main(ctx):
        ctx.comm.set_errhandler(make_error_handler())
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
        except MPIError:
            return "handled"
        return "ok"

    res, _ = run(2, main, kills=[(1, 0.5)], raise_task_failures=False)
    assert res[0] == "handled"
