"""Failure generator constraints (Sec. III)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ft import FailureGenerator, Kill


def test_rank0_never_chosen():
    gen = FailureGenerator(seed=1)
    for _ in range(50):
        victims = gen.choose_victims(8, 3)
        assert 0 not in victims


def test_victims_distinct_and_sorted():
    gen = FailureGenerator(seed=2)
    v = gen.choose_victims(20, 5)
    assert v == sorted(set(v))
    assert len(v) == 5


def test_conflict_pairs_respected_at_grid_level():
    # ranks 1,2 -> grid A(=1); ranks 3,4 -> grid B(=2); A and B conflict
    gen = FailureGenerator(seed=3, conflict_pairs=[(1, 2)],
                           rank_to_grid=lambda r: 1 if r in (1, 2) else 2)
    for _ in range(100):
        victims = gen.choose_victims(5, 2)
        grids = {1 if r in (1, 2) else 2 for r in victims}
        assert grids != {1, 2}


def test_impossible_constraints_raise():
    gen = FailureGenerator(seed=0, conflict_pairs=[(1, 2)],
                           rank_to_grid=lambda r: 1 if r == 1 else 2)
    # only ranks 1 and 2 exist (besides protected 0): any pair violates
    with pytest.raises(RuntimeError):
        gen.choose_victims(3, 2, max_tries=50)


def test_too_many_failures_rejected():
    gen = FailureGenerator()
    with pytest.raises(ValueError):
        gen.choose_victims(3, 3)  # only ranks 1, 2 are killable


def test_plan_produces_simultaneous_kills():
    gen = FailureGenerator(seed=5)
    kills = gen.plan(10, 3, at=7.5)
    assert len(kills) == 3
    assert all(isinstance(k, Kill) and k.at == 7.5 for k in kills)


def test_deterministic_given_seed():
    assert FailureGenerator(seed=9).choose_victims(30, 4) == \
        FailureGenerator(seed=9).choose_victims(30, 4)
    # different seeds eventually differ
    draws = {tuple(FailureGenerator(seed=s).choose_victims(30, 4))
             for s in range(10)}
    assert len(draws) > 1


def test_custom_protected_set():
    gen = FailureGenerator(seed=1, protect={0, 1, 2})
    for _ in range(20):
        assert not set(gen.choose_victims(6, 2)) & {0, 1, 2}


@given(st.integers(0, 1000), st.integers(1, 5))
@settings(max_examples=50)
def test_constraints_hold_for_any_seed(seed, n_failures):
    pairs = [(0, 1), (2, 3)]
    gen = FailureGenerator(seed, conflict_pairs=pairs,
                           rank_to_grid=lambda r: r // 3)
    victims = gen.choose_victims(16, n_failures)
    assert 0 not in victims
    grids = {r // 3 for r in victims}
    for a, b in pairs:
        assert not (a in grids and b in grids)
