"""File-backed checkpoint storage."""

import numpy as np
import pytest

from repro.core import AppConfig, run_app
from repro.ft import Disk, FileDisk
from repro.ft.failure_injection import Kill
from repro.machine.presets import OPL


def snap(step, shape=(4, 4)):
    return {"u": np.full(shape, float(step)), "step_count": step,
            "level_x": 2, "level_y": 2}


def test_write_read_roundtrip(tmp_path):
    disk = FileDisk(tmp_path)
    disk.write(1, 0, snap(8))
    back = disk.read(1, 0, 8)
    assert back["step_count"] == 8
    assert back["level_x"] == 2 and back["level_y"] == 2
    assert np.allclose(back["u"], 8.0)
    assert len(list(tmp_path.glob("*.npz"))) == 1


def test_missing_checkpoint_returns_none(tmp_path):
    disk = FileDisk(tmp_path)
    assert disk.read(0, 0, 5) is None


def test_history_pruned_on_disk(tmp_path):
    disk = FileDisk(tmp_path)
    for step in range(6):
        disk.write(0, 0, snap(step))
    files = sorted(tmp_path.glob("ckpt_g0_r0_*.npz"))
    assert len(files) == Disk.KEEP
    assert disk.available_steps(0, 0) == (3, 4, 5)
    assert disk.read(0, 0, 0) is None
    assert disk.read(0, 0, 5)["step_count"] == 5


def test_pruning_round_trip(tmp_path):
    """Index and filesystem must agree through pruning: whatever
    ``available_steps`` reports is exactly the set of files on disk, and
    every retained step reads back its own payload."""
    disk = FileDisk(tmp_path)
    for step in range(6):
        disk.write(0, 0, snap(step))
    assert disk.available_steps(0, 0) == (3, 4, 5)
    # step 1 was evicted: index AND file
    assert disk.read(0, 0, 1) is None
    assert not (tmp_path / "ckpt_g0_r0_s1.npz").exists()
    # re-writing a step older than the retained window evicts itself;
    # its file must not linger (read trusts the filesystem)
    disk.write(0, 0, snap(1))
    assert disk.available_steps(0, 0) == (3, 4, 5)
    assert disk.read(0, 0, 1) is None
    assert not (tmp_path / "ckpt_g0_r0_s1.npz").exists()
    # a newer step rolls the window forward
    disk.write(0, 0, snap(6))
    assert disk.available_steps(0, 0) == (4, 5, 6)
    files = {p.name for p in tmp_path.glob("*.npz")}
    assert files == {"ckpt_g0_r0_s4.npz", "ckpt_g0_r0_s5.npz",
                     "ckpt_g0_r0_s6.npz"}
    for step in (4, 5, 6):
        back = disk.read(0, 0, step)
        assert back["step_count"] == step
        assert np.allclose(back["u"], float(step))


def test_separate_keys_separate_files(tmp_path):
    disk = FileDisk(tmp_path)
    disk.write(0, 0, snap(4))
    disk.write(0, 1, snap(4))
    disk.write(2, 0, snap(4))
    assert len(list(tmp_path.glob("*.npz"))) == 3


def test_app_runs_with_file_disk(tmp_path):
    """Full CR run — including a real failure and restart — against the
    filesystem backend."""
    disk = FileDisk(tmp_path / "ckpts")
    base = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                             diag_procs=2, checkpoint_count=4,
                             disk=FileDisk(tmp_path / "base")), OPL)
    cfg = AppConfig(n=6, level=4, technique_code="CR", steps=16,
                    diag_procs=2, checkpoint_count=4, disk=disk)
    m = run_app(cfg, OPL, kills=[Kill(7, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
    assert list((tmp_path / "ckpts").glob("*.npz"))  # real files written
