"""Poisson (MTBF-driven) failure plans."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ft import FailureGenerator


def test_poisson_plan_respects_horizon_and_protection():
    gen = FailureGenerator(seed=1)
    kills = gen.poisson_plan(world_size=32, mtbf=1.0, horizon=10.0)
    assert all(0 < k.at < 10.0 for k in kills)
    assert all(k.rank != 0 for k in kills)
    times = [k.at for k in kills]
    assert times == sorted(times)


def test_poisson_plan_rate_scales():
    gen_fast = FailureGenerator(seed=2)
    gen_slow = FailureGenerator(seed=2)
    many = gen_fast.poisson_plan(64, mtbf=0.5, horizon=20.0)
    few = gen_slow.poisson_plan(64, mtbf=5.0, horizon=20.0)
    assert len(many) > len(few)


def test_poisson_plan_max_failures_cap():
    gen = FailureGenerator(seed=3)
    kills = gen.poisson_plan(64, mtbf=0.01, horizon=100.0, max_failures=5)
    assert len(kills) == 5


def test_poisson_plan_victims_distinct():
    gen = FailureGenerator(seed=4)
    kills = gen.poisson_plan(16, mtbf=0.01, horizon=100.0)
    ranks = [k.rank for k in kills]
    assert len(ranks) == len(set(ranks))
    assert len(ranks) <= 15  # world minus protected rank 0


def test_poisson_plan_deterministic():
    a = FailureGenerator(seed=7).poisson_plan(32, 1.0, 5.0)
    b = FailureGenerator(seed=7).poisson_plan(32, 1.0, 5.0)
    assert a == b


@given(st.integers(0, 100))
@settings(max_examples=30)
def test_poisson_constraints_hold(seed):
    """Replica-pair conflicts are a *simultaneity* constraint: no two
    ranks of a conflicting grid pair may die at the same instant.  A
    pair spread across different failure times is legal — the first
    victim's grid has been recovered by the time the partner dies."""
    gen = FailureGenerator(seed, conflict_pairs=[(0, 1)],
                           rank_to_grid=lambda r: r // 4)
    kills = gen.poisson_plan(16, mtbf=0.2, horizon=5.0)
    by_time = {}
    for k in kills:
        by_time.setdefault(k.at, set()).add(k.rank // 4)
    for grids in by_time.values():
        assert not ({0, 1} <= grids)
    assert all(k.rank != 0 for k in kills)


@given(st.integers(0, 200))
@settings(max_examples=50)
def test_poisson_pair_allowed_across_time(seed):
    """The old injector accumulated every past victim into the conflict
    check, so with enough failures a conflicting pair could never *both*
    die over the whole horizon — starving long-horizon plans.  With a
    dense plan over a tiny world, both grids of the pair must eventually
    be hit (at different instants)."""
    gen = FailureGenerator(seed, conflict_pairs=[(0, 1)],
                           rank_to_grid=lambda r: r // 4)
    # world of 8 -> grids {0, 1} only (rank 0 protected); mtbf small
    # enough that every killable rank is eventually consumed
    kills = gen.poisson_plan(8, mtbf=0.01, horizon=1000.0)
    assert len(kills) == 7  # every unprotected rank dies eventually
    grids = {k.rank // 4 for k in kills}
    assert grids == {0, 1}


def test_inject_sorts_schedule():
    from repro.ft.failure_injection import Kill

    class _Uni:
        def __init__(self):
            self.calls = []

        def kill_rank(self, job, rank, at=None):
            self.calls.append((at, rank))

    gen = FailureGenerator()
    uni = _Uni()
    plan = [Kill(5, 3.0), Kill(2, 1.0), Kill(7, 1.0), Kill(1, 2.0)]
    gen.inject(uni, job=None, kills=plan)
    assert uni.calls == [(1.0, 2), (1.0, 7), (2.0, 1), (3.0, 5)]
