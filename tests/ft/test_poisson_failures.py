"""Poisson (MTBF-driven) failure plans."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ft import FailureGenerator


def test_poisson_plan_respects_horizon_and_protection():
    gen = FailureGenerator(seed=1)
    kills = gen.poisson_plan(world_size=32, mtbf=1.0, horizon=10.0)
    assert all(0 < k.at < 10.0 for k in kills)
    assert all(k.rank != 0 for k in kills)
    times = [k.at for k in kills]
    assert times == sorted(times)


def test_poisson_plan_rate_scales():
    gen_fast = FailureGenerator(seed=2)
    gen_slow = FailureGenerator(seed=2)
    many = gen_fast.poisson_plan(64, mtbf=0.5, horizon=20.0)
    few = gen_slow.poisson_plan(64, mtbf=5.0, horizon=20.0)
    assert len(many) > len(few)


def test_poisson_plan_max_failures_cap():
    gen = FailureGenerator(seed=3)
    kills = gen.poisson_plan(64, mtbf=0.01, horizon=100.0, max_failures=5)
    assert len(kills) == 5


def test_poisson_plan_victims_distinct():
    gen = FailureGenerator(seed=4)
    kills = gen.poisson_plan(16, mtbf=0.01, horizon=100.0)
    ranks = [k.rank for k in kills]
    assert len(ranks) == len(set(ranks))
    assert len(ranks) <= 15  # world minus protected rank 0


def test_poisson_plan_deterministic():
    a = FailureGenerator(seed=7).poisson_plan(32, 1.0, 5.0)
    b = FailureGenerator(seed=7).poisson_plan(32, 1.0, 5.0)
    assert a == b


@given(st.integers(0, 100))
@settings(max_examples=30)
def test_poisson_constraints_hold(seed):
    gen = FailureGenerator(seed, conflict_pairs=[(0, 1)],
                           rank_to_grid=lambda r: r // 4)
    kills = gen.poisson_plan(16, mtbf=0.2, horizon=5.0)
    grids = {k.rank // 4 for k in kills}
    assert not ({0, 1} <= grids)
    assert all(k.rank != 0 for k in kills)
