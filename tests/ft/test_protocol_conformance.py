"""Smoke-level protocol conformance of the ft layer.

The pytest plugin (:mod:`repro.analysis.pytest_plugin`) gates every
test under ``tests/ft/`` on the model verifier: the shipped CR/RC/AC
recovery skeletons — with the real :mod:`repro.ft.reconstruct` repair
inlined — must model-check deadlock-free before ft tests run.  These
tests pin that wiring itself.
"""

import pytest

from repro.analysis import pytest_plugin
from repro.analysis.model import verify_modes


def test_conformance_gate_ran_and_is_clean():
    # the autouse fixture already ran for this very test; its cached
    # verdict must exist and be clean
    assert pytest_plugin._protocol_problems == []


def test_verifier_inlines_real_reconstruct():
    """The verified models must exercise the actual repair pipeline:
    failure placements were explored and survived for every mode."""
    for rep in verify_modes():
        assert rep.ok
        assert rep.result.kills_explored >= 1
        assert rep.result.terminals >= 1


class _FakeNode:
    nodeid = "tests/ft/test_whatever.py::test_case"

    @staticmethod
    def get_closest_marker(name):
        return None


class _FakeRequest:
    node = _FakeNode()


def test_gate_fails_ft_tests_when_protocol_broken(monkeypatch):
    monkeypatch.setattr(pytest_plugin, "_protocol_problems",
                        ["CR recovery protocol broken (cr_parent)"])
    gen = pytest_plugin.ft_protocol_conformance.__wrapped__(_FakeRequest())
    with pytest.raises(pytest.fail.Exception) as exc:
        next(gen)
    msg = str(exc.value)
    assert "verify-protocol" in msg
    assert "cr_parent" in msg


def test_gate_skips_non_ft_tests(monkeypatch):
    monkeypatch.setattr(pytest_plugin, "_protocol_problems", ["broken"])

    class Node(_FakeNode):
        nodeid = "tests/mpi/test_p2p.py::test_case"

    class Req:
        node = Node()

    gen = pytest_plugin.ft_protocol_conformance.__wrapped__(Req())
    next(gen)  # must not raise
