"""Communicator reconstruction (Figs. 2, 3, 5, 7)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ft import (PLACE_FIRST_FIT, PLACE_SAME_HOST, PLACE_SPARE,
                      ReconstructTimers, communicator_reconstruct,
                      select_rank_key)
from repro.ft.reconstruct import PlacementError, _placement_hosts
from repro.machine import Hostfile
from repro.mpi import MPIError, Universe
from repro.machine.presets import IDEAL, OPL


# ---------------------------------------------------------------------------
# select_rank_key (Fig. 7)
# ---------------------------------------------------------------------------
def test_select_rank_key_examples():
    # original size 7, failed {3, 5}: survivors keep 0,1,2,4,6
    for i, expect in enumerate([0, 1, 2, 4, 6]):
        assert select_rank_key(i, 5, [3, 5], 7) == expect


def test_select_rank_key_out_of_range():
    with pytest.raises(ValueError):
        select_rank_key(5, 5, [3, 5], 7)


@given(st.integers(2, 40), st.sets(st.integers(0, 39), min_size=0, max_size=10))
@settings(max_examples=60)
def test_select_rank_key_is_order_preserving_bijection(total, failed):
    failed = {f for f in failed if f < total}
    if len(failed) >= total:
        return
    shrunk = total - len(failed)
    keys = [select_rank_key(i, shrunk, sorted(failed), total)
            for i in range(shrunk)]
    # keys are exactly the surviving original ranks, in order
    assert keys == sorted(set(range(total)) - failed)


# ---------------------------------------------------------------------------
# full protocol
# ---------------------------------------------------------------------------
def _reconstruct_app(record):
    async def main(ctx):
        timers = ReconstructTimers()
        await ctx.compute(1.0)
        world = await communicator_reconstruct(
            ctx, ctx.comm, entry=main, argv=ctx.argv, timers=timers)
        # everyone computes a collective proof that ranks are usable
        total = await world.allreduce(world.rank)
        record.append((ctx.proc.name, world.rank, world.size, total,
                       timers.total_failed))
        return (world.rank, world.size)

    return main


def test_reconstruction_restores_size_and_ranks():
    record = []
    main = _reconstruct_app(record)
    uni = Universe(IDEAL)
    job = uni.launch(6, main)
    uni.kill_rank(job, 2, at=0.5)
    uni.kill_rank(job, 4, at=0.5)
    uni.run(raise_task_failures=False)
    # survivors
    results = job.results()
    assert results[0] == (0, 6)
    assert results[5] == (5, 6)
    # children regained exactly ranks 2 and 4
    child_ranks = sorted(r[1] for r in record if r[0].startswith("spawn"))
    assert child_ranks == [2, 4]
    # the post-repair collective saw all 6 ranks: sum 0..5
    assert all(r[3] == 15 for r in record)


def test_no_failure_returns_original_world():
    async def main(ctx):
        world = await communicator_reconstruct(ctx, ctx.comm, entry=main)
        return world.state is ctx.comm.state

    uni = Universe(IDEAL)
    job = uni.launch(4, main)
    uni.run()
    assert all(job.results())


def test_timers_populated_on_failure():
    timers_box = {}

    async def main(ctx):
        t = ReconstructTimers()
        await ctx.compute(1.0)
        world = await communicator_reconstruct(ctx, ctx.comm, entry=main,
                                               timers=t)
        if world.rank == 0:
            timers_box["t"] = t
        return world.rank

    uni = Universe(OPL)
    job = uni.launch(5, main)
    uni.kill_rank(job, 3, at=0.5)
    uni.run(raise_task_failures=False)
    t = timers_box["t"]
    assert t.total_failed == 1
    assert t.failed_ranks == [3]
    assert t.reconstruct > 0 and t.agree > 0
    assert t.failed_list >= t.shrink
    assert t.iterations == 2  # repair + verify


def test_same_host_placement_restores_load_balance():
    hosts_box = {}

    async def main(ctx):
        await ctx.compute(1.0)
        world = await communicator_reconstruct(
            ctx, ctx.comm, entry=main, placement=PLACE_SAME_HOST)
        if ctx.proc.spawned:
            hosts_box[world.rank] = ctx.proc.host.name
        return world.rank

    hf = Hostfile.uniform(4, slots=2)
    uni = Universe(IDEAL, hostfile=hf)
    job = uni.launch(8, main)
    uni.kill_rank(job, 5, at=0.5)   # rank 5 lives on host 5//2 = node002
    uni.run(raise_task_failures=False)
    assert hosts_box == {5: "node002"}


def test_spare_placement():
    hosts_box = {}

    async def main(ctx):
        await ctx.compute(1.0)
        world = await communicator_reconstruct(
            ctx, ctx.comm, entry=main, placement=PLACE_SPARE)
        if ctx.proc.spawned:
            hosts_box[world.rank] = ctx.proc.host.name
        return world.rank

    hf = Hostfile.uniform(2, slots=2, n_spares=1)
    uni = Universe(IDEAL, hostfile=hf)
    job = uni.launch(4, main)
    uni.kill_rank(job, 1, at=0.5)
    uni.run(raise_task_failures=False)
    assert hosts_box == {1: "spare000"}


def test_first_fit_placement():
    hosts_box = {}

    async def main(ctx):
        await ctx.compute(1.0)
        world = await communicator_reconstruct(
            ctx, ctx.comm, entry=main, placement=PLACE_FIRST_FIT)
        if ctx.proc.spawned:
            hosts_box[world.rank] = ctx.proc.host.name
        return world.rank

    hf = Hostfile.uniform(3, slots=2)
    uni = Universe(IDEAL, hostfile=hf)
    job = uni.launch(4, main)   # node000, node000, node001, node001
    uni.kill_rank(job, 3, at=0.5)
    uni.run(raise_task_failures=False)
    # the death freed a slot on node001, which is the first fit
    assert hosts_box == {3: "node001"}


# ---------------------------------------------------------------------------
# placement fallback chains (_placement_hosts)
# ---------------------------------------------------------------------------
class _Uni:
    """Just enough universe for ``_placement_hosts``."""

    def __init__(self, hostfile):
        self.hostfile = hostfile


def _occupy(hf, **counts):
    for h in hf:
        if h.name in counts:
            h.occupied = counts[h.name]
    return hf


def test_same_host_prefers_original_host():
    hf = Hostfile.uniform(2, slots=2)
    assert _placement_hosts(_Uni(hf), [3], PLACE_SAME_HOST) == ["node001"]


def test_same_host_falls_back_to_spares_then_regular():
    hf = _occupy(Hostfile.uniform(2, slots=2, n_spares=1), node001=2)
    assert _placement_hosts(_Uni(hf), [3], PLACE_SAME_HOST) == ["spare000"]
    hf = _occupy(Hostfile.uniform(2, slots=2), node001=2)
    assert _placement_hosts(_Uni(hf), [3], PLACE_SAME_HOST) == ["node000"]


def test_same_host_rank_past_hostfile_falls_back():
    """A rank whose Fig. 5 arithmetic maps past the regular hosts (the
    old IndexError path) takes the deterministic fallback chain."""
    hf = Hostfile.uniform(2, slots=2, n_spares=1)
    assert _placement_hosts(_Uni(hf), [99], PLACE_SAME_HOST) == ["spare000"]


def test_spare_policy_falls_back_to_regular():
    hf = Hostfile.uniform(2, slots=2)  # no spares at all
    assert _placement_hosts(_Uni(hf), [1], PLACE_SPARE) == ["node000"]


def test_first_fit_policy_falls_back_to_spares():
    hf = _occupy(Hostfile.uniform(2, slots=2, n_spares=1),
                 node000=2, node001=2)
    assert _placement_hosts(_Uni(hf), [1], PLACE_FIRST_FIT) == ["spare000"]


def test_pending_ledger_spreads_same_repair():
    """Replacements placed earlier in the same repair consume capacity the
    later ones must see — two victims of a one-free-slot host cannot both
    land on it."""
    hf = _occupy(Hostfile.uniform(2, slots=2), node000=1, node001=1)
    names = _placement_hosts(_Uni(hf), [0, 1], PLACE_SAME_HOST)
    assert names == ["node000", "node001"]


@pytest.mark.parametrize("placement",
                         [PLACE_SAME_HOST, PLACE_SPARE, PLACE_FIRST_FIT])
def test_exhausted_hostfile_raises_placement_error(placement):
    hf = _occupy(Hostfile.uniform(2, slots=2, n_spares=1),
                 node000=2, node001=2, spare000=2)
    with pytest.raises(PlacementError) as exc:
        _placement_hosts(_Uni(hf), [1], placement)
    assert "rank 1" in str(exc.value)
    assert placement in str(exc.value)


def test_placement_is_deterministic():
    hf = _occupy(Hostfile.uniform(3, slots=2, n_spares=1), node001=2)
    uni = _Uni(hf)
    first = _placement_hosts(uni, [2, 3, 0], PLACE_SAME_HOST)
    assert first == _placement_hosts(uni, [2, 3, 0], PLACE_SAME_HOST)


def test_unknown_placement_policy_rejected():
    with pytest.raises(ValueError):
        _placement_hosts(_Uni(Hostfile.uniform(1)), [0], "teleport")


# ---------------------------------------------------------------------------
# phase-time attribution across failed repair attempts
# ---------------------------------------------------------------------------
def test_aborted_attempt_charges_its_inflight_phase():
    """An attempt aborted mid-repair charges the phase it died in: the
    merge wait for a doomed replacement lands in ``timers.merge`` instead
    of vanishing.  (The obs spans always closed on error, so before the
    fix the timers under-reported against the span breakdown and the
    retry's phases looked slower than they were.)"""
    def make_main(box):
        async def main(ctx):
            await ctx.compute(1.0)  # replacements pause before joining too
            t = ReconstructTimers()
            world = await communicator_reconstruct(ctx, ctx.comm,
                                                   entry=main, timers=t)
            if world is None:
                return "orphan"
            if world.rank == 0:
                box["t"] = t
            return world.rank
        return main

    def run(kill_replacement):
        box = {}
        uni = Universe(IDEAL)
        job = uni.launch(4, make_main(box))
        uni.kill_rank(job, 2, at=0.5)
        if kill_replacement:
            # the first replacement spawns at ~1.0 and would join at ~2.0
            # (its initial compute); kill it mid-pause so the parents'
            # merge — entered at ~1.0 — aborts at 1.5
            def kill_first():
                assert len(uni.jobs) > 1, "replacement not spawned yet"
                p = uni.jobs[1].procs[0]
                if p.alive:
                    uni.kill_proc(p)
            uni.engine.call_at(1.5, kill_first)
        uni.run(raise_task_failures=False)
        return box["t"]

    control = run(kill_replacement=False)
    retried = run(kill_replacement=True)
    # one clean attempt: merge waits out the replacement's 1.0s startup
    assert control.merge == pytest.approx(1.0, abs=0.05)
    # aborted attempt adds its 0.5s doomed wait on top of the clean retry
    assert retried.merge == pytest.approx(1.5, abs=0.05)
    # and the buckets cover the repair total — nothing vanishes
    assert retried.merge == pytest.approx(retried.reconstruct, abs=0.05)


def test_failure_during_recovery_loops_again():
    """A second failure that lands while the first repair is under way is
    caught by the Fig. 3 retry loop."""
    async def main(ctx):
        await ctx.compute(1.0)
        t = ReconstructTimers()
        world = await communicator_reconstruct(ctx, ctx.comm, entry=main,
                                               timers=t)
        total = await world.allreduce(1)
        return (world.rank, world.size, total, t.iterations)

    uni = Universe(OPL)
    job = uni.launch(6, main)
    uni.kill_rank(job, 2, at=0.5)
    # second kill lands mid-recovery of the first (OPL repair takes ~ms-s)
    uni.kill_rank(job, 4, at=0.52)
    uni.run(raise_task_failures=False)
    res = job.results()
    assert res[0][:3] == (0, 6, 6)
    assert res[0][3] >= 2


def test_replacement_killed_mid_join_triggers_repair_retry():
    """The first replacement dies before completing its join; the repair
    retries from revoke+shrink and spawns a second replacement (extension
    beyond the paper's pseudocode)."""
    async def main(ctx):
        await ctx.compute(1.0)  # replacements also pause before joining
        world = await communicator_reconstruct(ctx, ctx.comm, entry=main)
        if world is None:
            return "orphan"
        total = await world.allreduce(1)
        return (world.rank, world.size, total)

    uni = Universe(IDEAL)
    job = uni.launch(4, main)
    uni.kill_rank(job, 2, at=0.5)

    # the first replacement spawns at ~1.0 and joins at ~2.0 (its initial
    # compute); kill it mid-pause so the parents' merge dooms
    def kill_first_replacement():
        assert len(uni.jobs) > 1, "replacement not spawned yet"
        p = uni.jobs[1].procs[0]
        if p.alive:
            uni.kill_proc(p)

    uni.engine.call_at(1.5, kill_first_replacement)
    uni.run(raise_task_failures=False)
    res = job.results()
    assert res[0] == (0, 4, 4)
    assert res[1] == (1, 4, 4)
    assert res[3] == (3, 4, 4)
    # a second replacement job exists and regained rank 2
    final_children = [j.results() for j in uni.jobs[2:]]
    assert any((2, 4, 4) in r for r in final_children)
