"""ReconstructTimers accumulation semantics."""

from repro.ft.reconstruct import ReconstructTimers


def test_defaults():
    t = ReconstructTimers()
    assert t.failed_list == 0.0 and t.reconstruct == 0.0
    assert t.failed_ranks == []
    assert t.iterations == 0


def test_independent_instances():
    a = ReconstructTimers()
    b = ReconstructTimers()
    a.failed_ranks.append(1)
    assert b.failed_ranks == []  # no shared mutable default
