"""Recovery technique configuration objects."""

import pytest

from repro.ft import (TECHNIQUES, AlternateCombination, CheckpointRestart,
                      ResamplingCopying, technique_by_code)


def test_registry_and_lookup():
    assert set(TECHNIQUES) == {"CR", "RC", "AC"}
    assert isinstance(technique_by_code("cr"), CheckpointRestart)
    assert isinstance(technique_by_code("RC"), ResamplingCopying)
    assert isinstance(technique_by_code("ac"), AlternateCombination)
    with pytest.raises(ValueError):
        technique_by_code("XX")


def test_scheme_shapes():
    assert len(CheckpointRestart().make_scheme(8, 4)) == 7
    assert len(ResamplingCopying().make_scheme(8, 4)) == 11
    assert len(AlternateCombination().make_scheme(8, 4)) == 10
    assert len(AlternateCombination(extra_layers=1).make_scheme(8, 4)) == 9


def test_only_cr_needs_checkpoints():
    assert CheckpointRestart().needs_checkpoints
    assert not ResamplingCopying().needs_checkpoints
    assert not AlternateCombination().needs_checkpoints


def test_cr_and_rc_use_classic_coefficients_after_loss():
    for tech in (CheckpointRestart(), ResamplingCopying()):
        scheme = tech.make_scheme(8, 4)
        coeffs = tech.combination_coefficients(scheme, [1, 4])
        assert sum(coeffs.values()) == pytest.approx(1.0)
        assert len([c for c in coeffs.values() if c == 1.0]) == 4
        assert len([c for c in coeffs.values() if c == -1.0]) == 3


def test_ac_recomputes_coefficients_after_loss():
    tech = AlternateCombination()
    scheme = tech.make_scheme(8, 4)
    classic = tech.combination_coefficients(scheme, [])
    after = tech.combination_coefficients(scheme, [1])
    assert after != classic
    assert scheme[1].index not in after
    assert sum(after.values()) == pytest.approx(1.0)


def test_rc_recovery_plan_matches_paper_pairings():
    tech = ResamplingCopying()
    scheme = tech.make_scheme(13, 4)
    assert tech.recovery_plan(scheme, [0]) == [(0, 7)]
    assert tech.recovery_plan(scheme, [7]) == [(7, 0)]
    assert tech.recovery_plan(scheme, [4]) == [(4, 1)]
    assert tech.recovery_plan(scheme, [4, 9]) == [(4, 1), (9, 2)]


def test_rc_conflicting_losses_rejected():
    tech = ResamplingCopying()
    scheme = tech.make_scheme(13, 4)
    with pytest.raises(ValueError):
        tech.recovery_plan(scheme, [0, 7])
    with pytest.raises(ValueError):
        tech.recovery_plan(scheme, [1, 4])
    with pytest.raises(ValueError):
        tech.validate_losses(scheme, [3, 10])


def test_rc_without_duplicates_has_no_diag_source():
    tech = ResamplingCopying()
    # manually built scheme without duplicates (defensive path)
    from repro.sparsegrid import CombinationScheme
    scheme = CombinationScheme(8, 4)
    with pytest.raises(ValueError):
        tech.recovery_plan(scheme, [0])


def test_codes_and_names():
    assert CheckpointRestart().code == "CR"
    assert ResamplingCopying().name == "Resampling and Copying"
    assert AlternateCombination().code == "AC"
    assert "extra_layers=2" in repr(AlternateCombination())
