"""Hostfile and slot management."""

import pytest

from repro.machine import DEFAULT_SLOTS, Host, Hostfile


def test_uniform_hostfile():
    hf = Hostfile.uniform(3, slots=4)
    assert len(hf) == 3
    assert all(h.slots == 4 for h in hf)
    assert [h.name for h in hf] == ["node000", "node001", "node002"]


def test_for_ranks_rounds_up():
    hf = Hostfile.for_ranks(25, slots=12)
    assert len(hf.regular_hosts) == 3
    assert Hostfile.for_ranks(24, slots=12).regular_hosts.__len__() == 2
    assert len(Hostfile.for_ranks(1, slots=12)) == 1


def test_host_of_rank_is_paper_arithmetic():
    """Fig. 5: hostfileLineIndex = failedRank / SLOTS."""
    hf = Hostfile.uniform(4, slots=12)
    assert hf.host_of_rank(0).name == "node000"
    assert hf.host_of_rank(11).name == "node000"
    assert hf.host_of_rank(12).name == "node001"
    assert hf.host_of_rank(47).name == "node003"
    with pytest.raises(IndexError):
        hf.host_of_rank(48)


def test_spare_hosts_excluded_from_rank_mapping():
    hf = Hostfile.uniform(2, slots=2, n_spares=2)
    assert len(hf.spare_hosts) == 2
    assert len(hf.regular_hosts) == 2
    # rank mapping ignores spares
    assert hf.host_of_rank(3, slots=2).name == "node001"
    with pytest.raises(IndexError):
        hf.host_of_rank(4, slots=2)


def test_first_fit_and_spare_allocation():
    hf = Hostfile.uniform(2, slots=1, n_spares=1)
    h = hf.first_fit()
    assert h.name == "node000"
    h.occupied += 1
    assert hf.first_fit().name == "node001"
    hf[1].occupied += 1
    with pytest.raises(RuntimeError):
        hf.first_fit()
    assert hf.first_spare().name == "spare000"
    hf.first_spare().occupied += 1
    with pytest.raises(RuntimeError):
        hf.first_spare()


def test_free_slots():
    h = Host("x", slots=3)
    assert h.free_slots == 3
    h.occupied = 2
    assert h.free_slots == 1


def test_empty_hostfile_rejected():
    with pytest.raises(ValueError):
        Hostfile([])


def test_default_slots_matches_paper():
    assert DEFAULT_SLOTS == 12  # Fig. 5's hard-coded SLOTS
