"""Cost model: interpolation, generic costs, Table I calibration."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.machine import (IDEAL, OPL, OPL_FIXED_ULFM, PRESETS, RAIJIN,
                           MachineSpec, UlfmCostModel, interp_curve)

TABLE1 = {
    19: (0.01, 0.01, 0.49, 0.01),
    38: (4.19, 2.46, 0.51, 0.01),
    76: (60.75, 43.35, 1.03, 0.02),
    152: (86.45, 50.80, 2.36, 0.02),
    304: (112.61, 55.57, 12.83, 0.03),
}


def test_interp_curve_hits_knots_exactly():
    xs = (1.0, 2.0, 4.0)
    ys = (10.0, 20.0, 0.0)
    for x, y in zip(xs, ys):
        assert interp_curve(x, xs, ys) == pytest.approx(y)


def test_interp_curve_linear_between_knots():
    assert interp_curve(3.0, (2.0, 4.0), (0.0, 10.0)) == pytest.approx(5.0)


def test_interp_curve_extrapolates_but_never_negative():
    assert interp_curve(0.0, (2.0, 4.0), (2.0, 1.0)) == pytest.approx(3.0)
    assert interp_curve(100.0, (2.0, 4.0), (2.0, 1.0)) == 0.0  # clamped


def test_interp_curve_needs_two_points():
    with pytest.raises(ValueError):
        interp_curve(1.0, (1.0,), (1.0,))


@given(st.floats(min_value=1.0, max_value=500.0))
def test_interp_curve_monotone_for_monotone_data(x):
    xs = (19.0, 38.0, 76.0, 152.0, 304.0)
    ys = (0.01, 4.19, 60.75, 86.45, 112.61)
    v = interp_curve(x, xs, ys)
    assert v >= 0.0
    if 19.0 <= x <= 304.0:
        assert v <= ys[-1] + 1e-9


@pytest.mark.parametrize("cores", sorted(TABLE1))
def test_ulfm_two_failure_costs_match_table1(cores):
    spawn, shrink, agree, merge = TABLE1[cores]
    m = UlfmCostModel()
    assert m.spawn(cores, 2) == pytest.approx(spawn)
    assert m.shrink(cores, 2) == pytest.approx(shrink)
    assert m.agree(cores, 2) == pytest.approx(agree)
    assert m.merge(cores) == pytest.approx(merge)


def test_single_failure_much_cheaper_than_double():
    m = UlfmCostModel()
    for cores in (76, 152, 304):
        assert m.spawn(cores, 1) < m.spawn(cores, 2) / 10
        assert m.shrink(cores, 1) < m.shrink(cores, 2) / 10


def test_extra_failures_scale_cost():
    m = UlfmCostModel()
    assert m.spawn(304, 3) > m.spawn(304, 2)
    assert m.spawn(304, 4) > m.spawn(304, 3)


def test_zero_scale_model_is_free():
    from repro.machine import ZERO_ULFM
    assert ZERO_ULFM.spawn(304, 2) == 0.0
    assert ZERO_ULFM.agree(304, 5) == 0.0
    assert ZERO_ULFM.revoke(304) == 0.0


def test_p2p_cost_alpha_beta():
    m = MachineSpec("t", 100, alpha=1e-6, beta=1e-9)
    assert m.p2p_cost(0) == pytest.approx(1e-6)
    assert m.p2p_cost(1000) == pytest.approx(1e-6 + 1e-6)


def test_collective_cost_log_scaling():
    m = MachineSpec("t", 100, alpha=1e-6, beta=0.0)
    assert m.collective_cost(1, 0) == 0.0
    assert m.collective_cost(2, 0) == pytest.approx(1e-6)
    assert m.collective_cost(8, 0) == pytest.approx(3e-6)
    assert m.collective_cost(9, 0) == pytest.approx(4e-6)


def test_disk_costs():
    m = MachineSpec("t", 10, t_io=2.0, read_factor=0.5, disk_bandwidth=1e6)
    assert m.disk_write_cost(0) == pytest.approx(2.0)
    assert m.disk_write_cost(1_000_000) == pytest.approx(3.0)
    assert m.disk_read_cost(0) == pytest.approx(1.0)


def test_compute_cost():
    m = MachineSpec("t", 10, flop_rate=1e9)
    assert m.compute_cost(2e9) == pytest.approx(2.0)


def test_presets_match_paper_parameters():
    assert OPL.t_io == pytest.approx(3.52)       # Sec. III-B
    assert RAIJIN.t_io == pytest.approx(0.03)    # Sec. III-B
    assert OPL.cores_per_node == 12              # dual 6-core X5670
    assert OPL.total_cores == 432
    assert RAIJIN.total_cores == 57_472
    assert IDEAL.compute_cost(1e20) == 0.0
    assert IDEAL.p2p_cost(10**9) == 0.0


def test_fixed_ulfm_preset_is_cheap():
    assert OPL_FIXED_ULFM.ulfm.spawn(304, 2) < 1.0
    assert OPL_FIXED_ULFM.ulfm.shrink(304, 2) < 1.0


def test_with_overrides_copies():
    spec = OPL.with_overrides(t_io=9.0)
    assert spec.t_io == 9.0
    assert OPL.t_io == pytest.approx(3.52)
    assert spec.alpha == OPL.alpha


def test_presets_registry():
    assert set(PRESETS) == {"OPL", "Raijin", "ideal", "OPL-fixed-ulfm"}


# ---------------------------------------------------------------------------
# failure-count edges: _failure_scale and the _op guard rails
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("n_failed,scale", [
    (1, 1.0),     # single failure: the gentle curves, no premium
    (2, 1.0),     # Table I calibration point itself
    (3, 1.35),    # one extra failure beyond the second
    (4, 1.70),
    (10, 3.80),
])
def test_failure_scale_table(n_failed, scale):
    assert UlfmCostModel()._failure_scale(n_failed) == pytest.approx(scale)


@pytest.mark.parametrize("op", ["spawn", "shrink", "agree"])
@pytest.mark.parametrize("n_failed", [0, -1, -10])
def test_no_failures_cost_nothing(op, n_failed):
    """No failure premium on the healthy path: those costs belong to the
    generic collective model, not the Table I curves."""
    assert getattr(UlfmCostModel(), op)(304, n_failed) == 0.0


@pytest.mark.parametrize("op", ["spawn", "shrink", "agree"])
def test_failures_clamped_to_group_size(op):
    """A communicator cannot lose more members than it has — small groups
    (the non-collective repair path) must not extrapolate the failure
    scale past their size."""
    m = UlfmCostModel()
    assert getattr(m, op)(4, 9) == getattr(m, op)(4, 4)
    assert getattr(m, op)(1, 5) == getattr(m, op)(1, 1)


@pytest.mark.parametrize("op", ["spawn", "shrink", "agree"])
@pytest.mark.parametrize("n_failed", [1, 2])
def test_small_groups_floored_not_free(op, n_failed):
    """Below the 19-core calibration range the Table I curves extrapolate
    to 0.0; the floor keeps sub-grid-sized repairs from being free."""
    m = UlfmCostModel()
    assert getattr(m, op)(2, n_failed) >= m.min_op_cost


def test_zero_scale_model_floor_stays_free():
    from repro.machine import ZERO_ULFM
    assert ZERO_ULFM.spawn(2, 1) == 0.0
    assert ZERO_ULFM.shrink(2, 2) == 0.0
    assert ZERO_ULFM.readmit(1024) == 0.0


def test_readmit_log_tree_scaling():
    m = UlfmCostModel()
    assert m.readmit(2) == pytest.approx(1e-4)
    assert m.readmit(1024) == pytest.approx(1e-3)
    assert m.readmit(1) == m.readmit(2)  # clamped at log2(2)
    # a local membership update, far below any collective repair
    assert m.readmit(304) < m.agree(304, 1) / 100
