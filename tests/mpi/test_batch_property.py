"""Batch fast path vs event path: bit-identity properties.

Every test here runs the *same* program twice — ``batch=True`` (the
vectorised collective rounds and fused halo exchanges) and ``batch=False``
(the per-rank rendezvous/recv event path) — and requires the observable
outcomes to agree exactly: per-rank results bit-for-bit, virtual finish
times, failure exceptions (type, message, ``failed_ranks``) and their
delivery times, and full end-to-end run metrics.  This is the contract
that lets the fast path stay on by default.
"""

import math

import numpy as np
import pytest

from repro.core import AppConfig, run_app
from repro.core.app import app_main
from repro.core.runner import make_universe
from repro.ft.failure_injection import FailureGenerator
from repro.machine.presets import IDEAL, OPL
from repro.mpi import MAX, MIN, SUM, ProcFailedError

from ..conftest import run_ranks


def run_both(n, entry, *, machine=IDEAL, kills=(),
             raise_task_failures=True):
    fast, _ = run_ranks(n, entry, machine=machine, kills=kills,
                        raise_task_failures=raise_task_failures, batch=True)
    slow, _ = run_ranks(n, entry, machine=machine, kills=kills,
                        raise_task_failures=raise_task_failures, batch=False)
    return fast, slow


def _normalise(x):
    """Comparison form: numpy payloads by dtype/shape/bytes (exact)."""
    if isinstance(x, np.ndarray):
        return ("nd", str(x.dtype), x.shape, x.tobytes())
    if isinstance(x, (list, tuple)):
        return tuple(_normalise(v) for v in x)
    if isinstance(x, dict):
        return tuple(sorted((k, _normalise(v)) for k, v in x.items()))
    return x


def assert_identical(fast, slow):
    assert _normalise(fast) == _normalise(slow)


# ----------------------------------------------------------------------
# failure-free collective rounds
# ----------------------------------------------------------------------
@pytest.mark.parametrize("machine", [IDEAL, OPL], ids=["ideal", "opl"])
def test_mixed_collective_script_bit_identical(machine):
    """A program mixing every batched op, with skewed arrivals, produces
    identical per-rank values and finish times on both paths."""
    async def main(ctx):
        comm, out = ctx.comm, []
        for step in range(3):
            await ctx.compute(0.01 * ((ctx.rank * 7 + step) % 5))
            await comm.barrier()
            out.append(await comm.allreduce(0.1 * (ctx.rank + 1), op=SUM))
            out.append(await comm.allreduce(float(ctx.rank), op=MIN))
            obj = {"step": step} if ctx.rank == step % ctx.size else None
            out.append(await comm.bcast(obj, root=step % ctx.size))
            out.append(await comm.gather(ctx.rank ** 2, root=0))
            out.append(await comm.allgather((ctx.rank, step)))
            items = [i * 10 + step for i in range(ctx.size)] \
                if ctx.rank == 1 else None
            out.append(await comm.scatter(items, root=1))
            out.append(await comm.reduce(ctx.rank + 0.25, op=MAX, root=2))
        return out, ctx.wtime()

    fast, slow = run_both(5, main, machine=machine)
    assert_identical(fast, slow)


def test_numpy_allreduce_bit_identical():
    """Float folds run left-to-right in rank order on both paths — no
    pairwise reassociation — so the sums agree to the last bit."""
    async def main(ctx):
        rng = np.random.default_rng(ctx.rank)
        acc = []
        for _ in range(4):
            v = rng.standard_normal(64) * 10.0 ** rng.integers(-6, 6)
            acc.append(await ctx.comm.allreduce(v, op=SUM))
        total = await ctx.comm.allreduce(1, op=SUM)
        return acc, total, ctx.wtime()

    fast, slow = run_both(7, main, machine=OPL)
    assert_identical(fast, slow)
    # and the results are genuinely shared work, not per-rank recompute
    assert fast[0][1] == 7


def test_bcast_aliasing_matches_event_path():
    """Root keeps its own object; non-roots get private clones (mutations
    never leak across ranks) — on both paths."""
    async def main(ctx):
        arr = np.arange(4.0) if ctx.rank == 2 else None
        got = await ctx.comm.bcast(arr, root=2)
        got_is_original = got is arr
        mutated = got + ctx.rank          # private copy per rank
        again = await ctx.comm.allgather(mutated)
        return got_is_original, again

    fast, slow = run_both(4, main)
    assert_identical(fast, slow)
    assert fast[2][0] is True and fast[0][0] is False


def test_single_rank_communicator():
    async def main(ctx):
        await ctx.comm.barrier()
        return (await ctx.comm.allreduce(2.5, op=SUM),
                await ctx.comm.gather("x", root=0), ctx.wtime())

    fast, slow = run_both(1, main, machine=OPL)
    assert_identical(fast, slow)


def test_scatter_length_error_identical():
    async def main(ctx):
        items = [1, 2] if ctx.rank == 0 else None
        try:
            await ctx.comm.scatter(items, root=0)
        except Exception as exc:
            return type(exc).__name__, str(exc), ctx.wtime()

    fast, slow = run_both(4, main, machine=OPL)
    assert_identical(fast, slow)


# ----------------------------------------------------------------------
# fused halo exchange
# ----------------------------------------------------------------------
_TAG_UP, _TAG_DOWN = 11, 12


async def _ring_exchange(ctx, rounds=5, width=32):
    """The solvers' halo idiom: exchange boundary rows around a ring."""
    comm = ctx.comm
    n, r = ctx.size, ctx.rank
    prev_r, next_r = (r - 1) % n, (r + 1) % n
    u = np.full(width, float(r))
    history = []
    for step in range(rounds):
        await ctx.compute(0.001 * ((r * 3 + step) % 4))
        lo, hi = await comm.exchange(
            ((prev_r, _TAG_UP, u.copy()), (next_r, _TAG_DOWN, u.copy())),
            ((prev_r, _TAG_DOWN), (next_r, _TAG_UP)), copy=False)
        u = (u + lo + hi) / 3.0
        history.append(u.copy())
    return history, ctx.wtime()


@pytest.mark.parametrize("machine", [IDEAL, OPL], ids=["ideal", "opl"])
def test_ring_exchange_bit_identical(machine):
    fast, slow = run_both(6, _ring_exchange, machine=machine)
    assert_identical(fast, slow)


def test_exchange_dead_neighbour_identical():
    """A neighbour dead before the exchange: same error, same timing
    (the fast path declines damaged communicators and falls back)."""
    async def main(ctx):
        comm, r, n = ctx.comm, ctx.rank, ctx.size
        prev_r, next_r = (r - 1) % n, (r + 1) % n
        await ctx.compute(0.5)
        try:
            await comm.exchange(
                ((prev_r, _TAG_UP, 1.0), (next_r, _TAG_DOWN, 1.0)),
                ((prev_r, _TAG_DOWN), (next_r, _TAG_UP)))
        except ProcFailedError as exc:
            return "dead", exc.failed_ranks, ctx.wtime()
        return "ok", ctx.wtime()

    fast, slow = run_both(4, main, machine=OPL, kills=((2, 0.1),),
                          raise_task_failures=False)
    assert_identical(fast, slow)
    assert fast[1][0] == "dead"


def test_exchange_kill_mid_flight_identical():
    """A neighbour killed while the exchange is parked: the surviving
    ranks observe the failure at the same virtual instant on both paths."""
    async def main(ctx):
        comm, r, n = ctx.comm, ctx.rank, ctx.size
        prev_r, next_r = (r - 1) % n, (r + 1) % n
        if r == 2:          # rank 2 never reaches the exchange
            await ctx.compute(100.0)
            return "late"
        try:
            got = await comm.exchange(
                ((prev_r, _TAG_UP, float(r)), (next_r, _TAG_DOWN, float(r))),
                ((prev_r, _TAG_DOWN), (next_r, _TAG_UP)))
            return "ok", got, ctx.wtime()
        except ProcFailedError as exc:
            return "dead", exc.failed_ranks, ctx.wtime()

    fast, slow = run_both(5, main, machine=OPL, kills=((2, 0.3),),
                          raise_task_failures=False)
    assert_identical(fast, slow)
    assert fast[1][0] == "dead" and fast[3][0] == "dead"


# ----------------------------------------------------------------------
# failure injection mid-collective (forced fallback)
# ----------------------------------------------------------------------
def test_kill_mid_round_identical_errors_and_times():
    """Kill a rank while others are parked in an open batch round: every
    survivor gets the identical ProcFailedError (message included) at the
    identical virtual time, and late arrivers get the *original* doom."""
    async def main(ctx):
        comm, r = ctx.comm, ctx.rank
        log = []
        # rank-dependent skew: rank 4 arrives long after the kill
        await ctx.compute(5.0 if r == 4 else 0.05 * r)
        for _ in range(2):
            try:
                log.append(("ok", await comm.allreduce(r, op=SUM),
                            ctx.wtime()))
            except ProcFailedError as exc:
                log.append(("fail", str(exc), exc.failed_ranks, ctx.wtime()))
        return log

    fast, slow = run_both(6, main, machine=OPL, kills=((3, 0.4),),
                          raise_task_failures=False)
    assert_identical(fast, slow)
    flat = [e for rank_log in fast if rank_log for e in rank_log]
    assert any(e[0] == "fail" for e in flat)


def test_rounds_after_failure_fall_back_identically():
    """After a member death the fast path declines every new round; the
    program keeps collecting identical results through the event path."""
    async def main(ctx):
        comm, r = ctx.comm, ctx.rank
        out = []
        for step in range(6):
            await ctx.compute(0.2)
            try:
                out.append(await comm.allreduce(1.0, op=SUM))
            except ProcFailedError as exc:
                out.append((str(exc), round(ctx.wtime(), 12)))
        return out

    fast, slow = run_both(4, main, machine=OPL, kills=((1, 0.5),),
                          raise_task_failures=False)
    assert_identical(fast, slow)


# ----------------------------------------------------------------------
# whole-application metric identity
# ----------------------------------------------------------------------
def _same(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(_same(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_same(x, y) for x, y in zip(a, b))
    return a == b


def _app_cfg(code="AC", decomposition="1d", steps=8):
    return AppConfig(n=6, level=4, technique_code=code, steps=steps,
                     diag_procs=2, checkpoint_count=4,
                     decomposition=decomposition)


@pytest.mark.parametrize("decomposition", ["1d", "2d"])
@pytest.mark.parametrize("code", ["AC", "CR"])
def test_solver_run_metrics_identical(code, decomposition):
    cfg = _app_cfg(code, decomposition)
    fast = run_app(cfg, OPL, batch=True)
    slow = run_app(_app_cfg(code, decomposition), OPL, batch=False)
    assert _same(fast.to_dict(), slow.to_dict())
    assert _same(fast.phase_breakdown, slow.phase_breakdown)


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("code", ["AC", "CR"])
def test_recovery_sweep_metrics_identical(code, seed):
    """Random kill plans (mid-solve, through the full ULFM recovery:
    revoke, shrink, agree, respawn) leave identical metrics either way."""
    cfg = _app_cfg(code, steps=16)
    layout = cfg.layout()
    gen = FailureGenerator(seed, protect={0}, rank_to_grid=layout.gid_of)
    kills = gen.plan(layout.total_procs, 1 + seed % 2, at=0.5 + 0.4 * seed)

    def one(batch):
        c = _app_cfg(code, steps=16)
        uni, total = make_universe(c, OPL, batch=batch)
        job = uni.launch(total, app_main, argv=(c,))
        FailureGenerator().inject(uni, job, kills)
        uni.run()
        return job.results()[0]

    fast, slow = one(True), one(False)
    assert fast is not None and slow is not None
    assert _same(fast.to_dict(), slow.to_dict())
