"""Cartesian topologies."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi import UNDEFINED, RankError
from repro.mpi.cart import CartHandle, create_cart, dims_create

from ..conftest import run_ranks as run


# ---------------------------------------------------------------------------
# dims_create
# ---------------------------------------------------------------------------
def test_dims_create_balanced():
    assert dims_create(4, 2) == [2, 2]
    assert dims_create(12, 2) == [4, 3]
    assert dims_create(8, 3) == [2, 2, 2]
    assert dims_create(7, 2) == [7, 1]
    assert dims_create(1, 2) == [1, 1]


def test_dims_create_respects_fixed_entries():
    assert dims_create(12, 2, [3, 0]) == [3, 4]
    assert dims_create(12, 2, [0, 6]) == [2, 6]
    with pytest.raises(ValueError):
        dims_create(12, 2, [5, 0])     # 5 does not divide 12
    with pytest.raises(ValueError):
        dims_create(12, 2, [3, 3])     # fixed product mismatch


@given(st.integers(1, 256), st.integers(1, 3))
@settings(max_examples=80)
def test_dims_create_product_and_order(n, ndims):
    dims = dims_create(n, ndims)
    prod = 1
    for d in dims:
        prod *= d
    assert prod == n
    assert all(d >= 1 for d in dims)
    # as-square-as-possible: max/min ratio no worse than n itself
    assert max(dims) <= n


# ---------------------------------------------------------------------------
# topology on a live communicator
# ---------------------------------------------------------------------------
def test_cart_coords_roundtrip():
    async def main(ctx):
        cart = await create_cart(ctx.comm, (2, 3), (True, True))
        assert cart.rank_at(cart.coords) == cart.rank
        return cart.coords

    res, _ = run(6, main)
    assert res == [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)]


def test_cart_shift_periodic():
    async def main(ctx):
        cart = await create_cart(ctx.comm, (2, 2), (True, True))
        down, up = cart.shift(0, 1)
        left, right = cart.shift(1, 1)
        return (down, up, left, right)

    res, _ = run(4, main)
    # rank 0 = (0,0): x-neighbours are (1,0)=2 both ways; y similarly
    assert res[0] == (2, 2, 1, 1)
    assert res[3] == (1, 1, 2, 2)


def test_cart_shift_nonperiodic_edges():
    async def main(ctx):
        cart = await create_cart(ctx.comm, (3, 1), (False, True))
        return cart.shift(0, 1)

    res, _ = run(3, main)
    assert res[0] == (UNDEFINED, 1)
    assert res[1] == (0, 2)
    assert res[2] == (1, UNDEFINED)


def test_cart_messages_between_neighbours():
    async def main(ctx):
        cart = await create_cart(ctx.comm, (2, 2), (True, True))
        _, right = cart.shift(1, 1)
        left, _ = cart.shift(1, 1)
        req = cart.isend(cart.coords, dest=right, tag=1)
        got = await cart.recv(source=left, tag=1)
        await req.wait()
        return got

    res, _ = run(4, main)
    assert res[0] == (0, 1)  # rank 0=(0,0) hears from left neighbour (0,1)


def test_cart_size_mismatch_rejected():
    async def main(ctx):
        with pytest.raises(ValueError):
            CartHandle(ctx.comm.state, ctx.proc, (2, 2), (True, True))
        return True

    res, _ = run(6, main)
    assert all(res)


def test_cart_bad_args():
    async def main(ctx):
        cart = await create_cart(ctx.comm, (2, 2), (True, True))
        with pytest.raises(RankError):
            cart.shift(5)
        with pytest.raises(RankError):
            cart.rank_at((0,))
        assert cart.rank_at((5, 0)) == UNDEFINED or True
        return True

    res, _ = run(4, main)
    assert all(res)


@given(st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_cart_rank_coord_bijection(px, py):
    async def main(ctx):
        cart = await create_cart(ctx.comm, (px, py), (True, True))
        seen = {cart.rank_at(cart.coords_of(r)) for r in range(cart.size)}
        return seen == set(range(cart.size))

    res, _ = run(px * py, main)
    assert all(res)
