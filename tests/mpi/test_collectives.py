"""Collective operations."""

import numpy as np
import pytest

from repro.mpi import MAX, MIN, PROD, SUM, LAND, RankError

from ..conftest import run_ranks as run


def test_barrier_synchronises_clocks(opl):
    async def main(ctx):
        await ctx.compute(float(ctx.rank))  # rank r arrives at t=r
        await ctx.comm.barrier()
        return ctx.wtime()

    res, _ = run(4, main, machine=opl)
    assert len(set(res)) == 1           # everyone leaves together
    assert res[0] >= 3.0                # at the latest arrival


def test_bcast_from_each_root():
    async def main(ctx):
        out = []
        for root in range(ctx.size):
            obj = f"r{root}" if ctx.rank == root else None
            out.append(await ctx.comm.bcast(obj, root=root))
        return out

    res, _ = run(3, main)
    assert all(r == ["r0", "r1", "r2"] for r in res)


def test_bcast_numpy_not_aliased():
    async def main(ctx):
        arr = np.arange(3) if ctx.rank == 0 else None
        got = await ctx.comm.bcast(arr, root=0)
        got += ctx.rank * 100
        return got.tolist()

    res, _ = run(3, main)
    assert res[0] == [0, 1, 2]
    assert res[2] == [200, 201, 202]


def test_gather_orders_by_rank():
    async def main(ctx):
        return await ctx.comm.gather(ctx.rank ** 2, root=1)

    res, _ = run(4, main)
    assert res[1] == [0, 1, 4, 9]
    assert res[0] is None and res[2] is None


def test_allgather():
    async def main(ctx):
        return await ctx.comm.allgather(chr(ord("a") + ctx.rank))

    res, _ = run(3, main)
    assert all(r == ["a", "b", "c"] for r in res)


def test_scatter():
    async def main(ctx):
        items = [i * 10 for i in range(ctx.size)] if ctx.rank == 0 else None
        return await ctx.comm.scatter(items, root=0)

    res, _ = run(4, main)
    assert res == [0, 10, 20, 30]


def test_scatter_wrong_length_raises_on_every_rank():
    async def main(ctx):
        items = [1, 2] if ctx.rank == 0 else None
        with pytest.raises(RankError):
            await ctx.comm.scatter(items, root=0)
        return True

    res, _ = run(4, main)
    assert all(res)


def test_reduce_and_allreduce_ops():
    async def main(ctx):
        s = await ctx.comm.allreduce(ctx.rank + 1, op=SUM)
        p = await ctx.comm.allreduce(ctx.rank + 1, op=PROD)
        mx = await ctx.comm.allreduce(ctx.rank, op=MAX)
        mn = await ctx.comm.allreduce(ctx.rank, op=MIN)
        land = await ctx.comm.allreduce(ctx.rank < 3, op=LAND)
        root_only = await ctx.comm.reduce(ctx.rank, op=SUM, root=2)
        return (s, p, mx, mn, land, root_only)

    res, _ = run(3, main)
    assert res[0][:5] == (6, 6, 2, 0, True)
    assert res[2][5] == 3
    assert res[0][5] is None


def test_allreduce_numpy_elementwise():
    async def main(ctx):
        v = np.full(3, float(ctx.rank))
        total = await ctx.comm.allreduce(v, op=SUM)
        mx = await ctx.comm.allreduce(v, op=MAX)
        return (total.tolist(), mx.tolist())

    res, _ = run(4, main)
    assert res[0][0] == [6.0, 6.0, 6.0]
    assert res[0][1] == [3.0, 3.0, 3.0]


def test_alltoall():
    async def main(ctx):
        objs = [f"{ctx.rank}->{j}" for j in range(ctx.size)]
        return await ctx.comm.alltoall(objs)

    res, _ = run(3, main)
    assert res[1] == ["0->1", "1->1", "2->1"]
    assert res[2] == ["0->2", "1->2", "2->2"]


def test_alltoall_wrong_length():
    async def main(ctx):
        with pytest.raises(RankError):
            await ctx.comm.alltoall([1])
        return True

    res, _ = run(3, main)
    assert all(res)


def test_collectives_interleave_with_p2p():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("x", dest=1)
        total = await ctx.comm.allreduce(1)
        if ctx.rank == 1:
            assert await ctx.comm.recv(source=0) == "x"
        return total

    res, _ = run(2, main)
    assert res == [2, 2]


def test_collective_cost_charged(opl):
    async def main(ctx):
        t0 = ctx.wtime()
        await ctx.comm.barrier()
        return ctx.wtime() - t0

    res, _ = run(8, main, machine=opl)
    expected = opl.barrier_cost(8)
    assert res[0] == pytest.approx(expected)


def test_single_rank_collectives():
    async def main(ctx):
        assert await ctx.comm.allreduce(5) == 5
        assert await ctx.comm.gather("a") == ["a"]
        assert await ctx.comm.bcast("b") == "b"
        await ctx.comm.barrier()
        return True

    res, _ = run(1, main)
    assert res == [True]
