"""Communicator management: split, dup, errhandlers."""

import pytest

from repro.mpi import UNDEFINED, CommInvalidError

from ..conftest import run_ranks as run


def test_split_by_parity():
    async def main(ctx):
        sub = await ctx.comm.split(ctx.rank % 2, ctx.rank)
        return (sub.rank, sub.size)

    res, _ = run(5, main)
    assert res == [(0, 3), (0, 2), (1, 3), (1, 2), (2, 3)]


def test_split_key_reorders():
    async def main(ctx):
        sub = await ctx.comm.split(0, -ctx.rank)  # reversed order
        return sub.rank

    res, _ = run(4, main)
    assert res == [3, 2, 1, 0]


def test_split_equal_keys_tie_break_by_old_rank():
    async def main(ctx):
        sub = await ctx.comm.split(0, 0)
        return sub.rank

    res, _ = run(4, main)
    assert res == [0, 1, 2, 3]


def test_split_undefined_color_gets_none():
    async def main(ctx):
        color = None if ctx.rank == 1 else 0
        sub = await ctx.comm.split(color, ctx.rank)
        return None if sub is None else sub.size

    res, _ = run(3, main)
    assert res == [2, None, 2]


def test_split_undefined_constant():
    async def main(ctx):
        color = UNDEFINED if ctx.rank == 0 else 7
        sub = await ctx.comm.split(color, ctx.rank)
        return None if sub is None else (sub.rank, sub.size)

    res, _ = run(3, main)
    assert res == [None, (0, 2), (1, 2)]


def test_split_comms_are_independent():
    async def main(ctx):
        sub = await ctx.comm.split(ctx.rank % 2, ctx.rank)
        # group-local collectives do not interfere across colors
        total = await sub.allreduce(ctx.rank)
        return total

    res, _ = run(4, main)
    assert res == [2, 4, 2, 4]


def test_dup_preserves_order():
    async def main(ctx):
        dup = await ctx.comm.dup()
        assert dup.size == ctx.size
        return dup.rank

    res, _ = run(4, main)
    assert res == [0, 1, 2, 3]


def test_nested_split():
    async def main(ctx):
        half = await ctx.comm.split(ctx.rank // 2, ctx.rank)
        pair = await half.split(0, -half.rank)
        return (half.rank, pair.rank)

    res, _ = run(4, main)
    assert res == [(0, 1), (1, 0), (0, 1), (1, 0)]


def test_handle_requires_membership():
    from repro.mpi.comm import CommHandle

    async def main(ctx):
        sub = await ctx.comm.split(ctx.rank % 2, ctx.rank)
        return sub.state

    res, uni = run(2, main)
    # build a handle for a proc not in the comm
    outsider_state = res[0]
    wrong_proc = uni.jobs[0].procs[1]
    with pytest.raises(CommInvalidError):
        CommHandle(outsider_state, wrong_proc)


def test_errhandler_called_before_raise():
    from repro.mpi import ProcFailedError
    calls = []

    async def main(ctx):
        def handler(comm, exc):
            calls.append((ctx.rank, type(exc).__name__))

        ctx.comm.set_errhandler(handler)
        try:
            await ctx.comm.barrier()
        except ProcFailedError:
            return "handled"
        return "ok"

    res, _ = run(3, main, kills=[(2, 0.0)], raise_task_failures=False)
    assert res[0] == "handled"
    assert (0, "ProcFailedError") in calls


def test_comm_free_is_safe():
    async def main(ctx):
        dup = await ctx.comm.dup()
        dup.set_errhandler(lambda c, e: None)
        dup.free()
        return True

    res, _ = run(2, main)
    assert all(res)
