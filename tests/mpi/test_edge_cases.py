"""MPI edge cases: revocation races, intercomm failures, empty payloads."""

import numpy as np
import pytest

from repro.mpi import (ANY_SOURCE, MPIError, ProcFailedError, RevokedError,
                       Universe)
from repro.machine.presets import IDEAL, OPL

from ..conftest import run_ranks as run


def test_zero_size_and_none_payloads():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(np.zeros(0), dest=1, tag=1)
            await ctx.comm.send(None, dest=1, tag=2)
            await ctx.comm.send(b"", dest=1, tag=3)
        else:
            a = await ctx.comm.recv(source=0, tag=1)
            b = await ctx.comm.recv(source=0, tag=2)
            c = await ctx.comm.recv(source=0, tag=3)
            return (a.size, b, c)
        return None

    res, _ = run(2, main)
    assert res[1] == (0, None, b"")


def test_send_during_revocation_window(opl):
    """A send sleeping through its injection cost observes a revocation
    that lands mid-flight."""
    async def main(ctx):
        if ctx.rank == 0:
            big = np.zeros(10_000_000)  # injection takes ~25 ms on OPL
            with pytest.raises(RevokedError):
                await ctx.comm.send(big, dest=1)
            return "saw-revoke"
        ctx.comm.revoke()
        return "revoked"

    res, _ = run(2, main, machine=opl)
    assert res[0] == "saw-revoke"


def test_intercomm_revoke():
    async def child(ctx):
        parent = ctx.get_parent()
        parent.revoke()
        return "child-done"

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(1, child)
        await ctx.compute(1.0)
        with pytest.raises(RevokedError):
            await inter.recv(source=0)
        return "ok"

    res, uni = run(1, main)
    assert res == ["ok"]
    assert uni.jobs[1].results() == ["child-done"]


def test_intercomm_recv_from_dead_child():
    async def child(ctx):
        await ctx.compute(10.0)
        return None

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(1, child)
        await ctx.compute(2.0)  # child killed at t=1
        with pytest.raises(ProcFailedError):
            await inter.recv(source=0)
        return "ok"

    uni = Universe(IDEAL)
    job = uni.launch(1, main)

    def kill_child():
        uni.kill_proc(uni.jobs[1].procs[0])

    uni.engine.call_at(1.0, kill_child)
    uni.run(raise_task_failures=False)
    assert job.results() == ["ok"]


def test_intercomm_pending_recv_fails_when_peer_dies():
    async def child(ctx):
        await ctx.compute(10.0)
        return None

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(1, child)
        with pytest.raises(ProcFailedError):
            await inter.recv(source=0)  # blocks; child dies at t=1
        return ctx.wtime()

    uni = Universe(IDEAL)
    job = uni.launch(1, main)
    uni.engine.call_at(1.0, lambda: uni.kill_proc(uni.jobs[1].procs[0]))
    uni.run(raise_task_failures=False)
    assert job.results()[0] >= 1.0


def test_any_source_recv_still_served_after_unrelated_death():
    """An ANY_SOURCE receive is not failed by a death as long as another
    sender delivers."""
    async def main(ctx):
        if ctx.rank == 0:
            msg = await ctx.comm.recv(source=ANY_SOURCE, tag=5)
            return msg
        if ctx.rank == 1:
            await ctx.compute(2.0)
            await ctx.comm.send("late", dest=0, tag=5)
        return None

    # rank 2 dies while rank 0 waits; rank 1 still delivers
    res, _ = run(3, main, kills=[(2, 1.0)], raise_task_failures=False)
    assert res[0] == "late"


def test_agree_survivor_completion_when_arrived_member_dies():
    """A rank that arrives at agree and then dies must not block it."""
    async def main(ctx):
        if ctx.rank == 2:
            # arrives immediately, killed at t=1 while others compute
            return await ctx.comm.agree(1)
        await ctx.compute(2.0)
        return await ctx.comm.agree(1)

    res, _ = run(3, main, kills=[(2, 1.0)], raise_task_failures=False)
    assert res[0] == 1 and res[1] == 1


def test_shrink_of_fully_healthy_comm_is_identity_membership():
    async def main(ctx):
        shrunk = await ctx.comm.shrink()
        from repro.mpi import IDENT
        return ctx.comm.group.compare(shrunk.group)

    res, _ = run(4, main)
    from repro.mpi import IDENT
    assert all(r == IDENT for r in res)


def test_split_after_deaths_excludes_dead():
    async def main(ctx):
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
        except MPIError:
            pass
        ctx.comm.revoke()
        shrunk = await ctx.comm.shrink()
        sub = await shrunk.split(shrunk.rank % 2, shrunk.rank)
        return (shrunk.rank, sub.size)

    res, _ = run(5, main, kills=[(2, 0.5)], raise_task_failures=False)
    # survivors: old ranks 0,1,3,4 -> shrunk 0..3 -> parity split 2+2
    alive = [r for r in res if r is not None]
    assert sorted(alive) == [(0, 2), (1, 2), (2, 2), (3, 2)]


def test_message_to_dead_then_revive_via_spawn_is_new_process():
    """A replacement is a distinct process: messages addressed to the dead
    rank before repair are not delivered to the replacement."""
    async def child(ctx):
        await ctx.get_parent().merge(high=True)
        return "fresh"

    # 3 ranks: rank 2 sends to rank 1, rank 1 dies; 0 and 2 recover
    async def entry(ctx):
        if ctx.rank == 1:
            await ctx.compute(10.0)
            return None
        if ctx.rank == 2:
            await ctx.comm.send("ghost", dest=1, tag=1)
        await ctx.compute(1.0)
        ctx.comm.revoke()
        shrunk = await ctx.comm.shrink()
        inter = await shrunk.spawn_multiple(1, child)
        merged = await inter.merge(high=False)
        assert merged.iprobe(tag=1) is None
        return "ok"

    res, _ = run(3, entry, kills=[(1, 0.5)], raise_task_failures=False)
    assert res[0] == "ok" and res[2] == "ok"
