"""Extended collective/point-to-point API: scan, exscan, reduce_scatter,
gatherv/scatterv, probe, waitall/waitany."""

import numpy as np
import pytest

from repro.mpi import MAX, SUM, RankError, waitall, waitany

from ..conftest import run_ranks as run


def test_scan_inclusive_prefix():
    async def main(ctx):
        return await ctx.comm.scan(ctx.rank + 1)

    res, _ = run(4, main)
    assert res == [1, 3, 6, 10]


def test_scan_with_max():
    async def main(ctx):
        vals = [3, 1, 4, 1, 5]
        return await ctx.comm.scan(vals[ctx.rank], op=MAX)

    res, _ = run(5, main)
    assert res == [3, 3, 4, 4, 5]


def test_exscan_exclusive_prefix():
    async def main(ctx):
        return await ctx.comm.exscan(ctx.rank + 1)

    res, _ = run(4, main)
    assert res == [None, 1, 3, 6]


def test_scan_numpy_payloads():
    async def main(ctx):
        v = np.full(2, float(ctx.rank + 1))
        out = await ctx.comm.scan(v, op=SUM)
        return out.tolist()

    res, _ = run(3, main)
    assert res == [[1, 1], [3, 3], [6, 6]]


def test_reduce_scatter_block():
    async def main(ctx):
        # rank r contributes [r*10+0, r*10+1, r*10+2]
        objs = [ctx.rank * 10 + i for i in range(ctx.size)]
        return await ctx.comm.reduce_scatter_block(objs)

    res, _ = run(3, main)
    # slot i = sum over ranks of (rank*10 + i)
    assert res == [30, 33, 36]


def test_reduce_scatter_wrong_length():
    async def main(ctx):
        with pytest.raises(RankError):
            await ctx.comm.reduce_scatter_block([1])
        return True

    res, _ = run(3, main)
    assert all(res)


def test_gatherv_scatterv_variable_sizes():
    async def main(ctx):
        mine = np.arange(ctx.rank + 1)  # different size per rank
        parts = await ctx.comm.gatherv(mine, root=0)
        if ctx.rank == 0:
            assert [len(p) for p in parts] == [1, 2, 3]
            back = await ctx.comm.scatterv(parts, root=0)
        else:
            back = await ctx.comm.scatterv(None, root=0)
        return len(back)

    res, _ = run(3, main)
    assert res == [1, 2, 3]


def test_iprobe_sees_arrived_message_without_consuming():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("ping", dest=1, tag=9)
            await ctx.comm.barrier()
            return None
        assert ctx.comm.iprobe(tag=4) is None
        await ctx.comm.barrier()
        status = ctx.comm.iprobe()
        assert status is not None and status.source == 0 and status.tag == 9
        # probing again still sees it (not consumed)
        assert ctx.comm.iprobe(source=0, tag=9) is not None
        msg = await ctx.comm.recv(source=0, tag=9)
        assert ctx.comm.iprobe() is None
        return msg

    res, _ = run(2, main)
    assert res[1] == "ping"


def test_waitall_collects_in_order():
    async def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(i * i, dest=1, tag=i) for i in range(4)]
            await waitall(reqs)
            return None
        reqs = [ctx.comm.irecv(source=0, tag=i) for i in range(4)]
        return await waitall(reqs)

    res, _ = run(2, main)
    assert res[1] == [0, 1, 4, 9]


def test_waitany_prefers_completed():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("a", dest=1, tag=1)
            await ctx.comm.send("ready", dest=1, tag=98)
            # only send "b" once rank 1 confirms its waitany finished
            await ctx.comm.recv(source=1, tag=99)
            await ctx.comm.send("b", dest=1, tag=2)
            return None
        r1 = ctx.comm.irecv(source=0, tag=2)   # completes late
        r2 = ctx.comm.irecv(source=0, tag=1)   # completes first
        await ctx.comm.recv(source=0, tag=98)  # "a" has certainly arrived
        idx, value = await waitany([r1, r2])
        assert (idx, value) == (1, "a")
        await ctx.comm.send(None, dest=0, tag=99)
        await r1.wait()
        return value

    res, _ = run(2, main)
    assert res[1] == "a"


def test_waitany_empty_rejected():
    async def main(ctx):
        with pytest.raises(ValueError):
            await waitany([])
        return True

    res, _ = run(1, main)
    assert res == [True]
