"""ULFM failure semantics: detection, revoke, shrink, agree, acks."""

import pytest

from repro.mpi import MPIError, ProcFailedError, RevokedError
from repro.mpi.errors import MPI_ERR_PROC_FAILED, MPI_ERR_REVOKED

from ..conftest import run_ranks as run


def test_recv_from_dead_rank_fails():
    async def main(ctx):
        await ctx.compute(1.0)
        if ctx.rank == 0:
            with pytest.raises(ProcFailedError) as e:
                await ctx.comm.recv(source=1)
            return e.value.failed_ranks
        return None

    res, _ = run(2, main, kills=[(1, 0.5)], raise_task_failures=False)
    assert res[0] == (1,)


def test_recv_blocked_then_source_dies():
    async def main(ctx):
        if ctx.rank == 0:
            with pytest.raises(ProcFailedError):
                await ctx.comm.recv(source=1)
            return ctx.wtime()
        await ctx.compute(10.0)
        return None

    res, _ = run(2, main, kills=[(1, 2.0)], raise_task_failures=False)
    assert res[0] >= 2.0  # failed only after the death


def test_send_to_dead_rank_fails():
    async def main(ctx):
        await ctx.compute(1.0)
        if ctx.rank == 0:
            with pytest.raises(ProcFailedError):
                await ctx.comm.send("x", dest=1)
            return "failed"
        return None

    res, _ = run(2, main, kills=[(1, 0.0)], raise_task_failures=False)
    assert res[0] == "failed"


def test_in_flight_message_still_delivered_after_sender_death(opl):
    """Eager-protocol semantics: a message already injected is delivered
    even if the sender dies before the receiver picks it up."""
    async def main(ctx):
        if ctx.rank == 1:
            await ctx.comm.send("legacy", dest=0)  # sent at t~0
            await ctx.compute(100.0)               # then killed at t=1
            return None
        await ctx.compute(5.0)                     # receive well after death
        return await ctx.comm.recv(source=1)

    res, _ = run(2, main, machine=opl, kills=[(1, 1.0)],
                 raise_task_failures=False)
    assert res[0] == "legacy"


def test_collective_fails_for_all_when_member_dies():
    async def main(ctx):
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
            return "ok"
        except ProcFailedError as e:
            return ("failed", e.failed_ranks)

    res, _ = run(4, main, kills=[(2, 0.5)], raise_task_failures=False)
    assert res[0] == ("failed", (2,)) == res[1] == res[3]


def test_collective_fails_even_if_death_is_after_some_arrivals():
    async def main(ctx):
        # rank 3 dies at 2.0 while 0..2 are already waiting in the barrier
        if ctx.rank == 3:
            await ctx.compute(5.0)
            return None
        try:
            await ctx.comm.barrier()
            return "ok"
        except ProcFailedError:
            return "failed"

    res, _ = run(4, main, kills=[(3, 2.0)], raise_task_failures=False)
    assert res[:3] == ["failed"] * 3


def test_error_codes():
    assert ProcFailedError().error_code == MPI_ERR_PROC_FAILED
    assert RevokedError().error_code == MPI_ERR_REVOKED


def test_revoke_fails_pending_and_future_ops():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.compute(1.0)
            ctx.comm.revoke()
            return "revoked"
        try:
            await ctx.comm.recv(source=0)  # blocks, then revoked
            return "got"
        except RevokedError:
            pass
        with pytest.raises(RevokedError):
            await ctx.comm.send("x", dest=0)
        with pytest.raises(RevokedError):
            await ctx.comm.barrier()
        return "revoked-seen"

    res, _ = run(3, main, raise_task_failures=False)
    assert res == ["revoked", "revoked-seen", "revoked-seen"]


def test_shrink_after_failure_preserves_order():
    async def main(ctx):
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
        except ProcFailedError:
            pass
        ctx.comm.revoke()
        shrunk = await ctx.comm.shrink()
        return (shrunk.rank, shrunk.size)

    res, _ = run(5, main, kills=[(2, 0.5)], raise_task_failures=False)
    # survivors 0,1,3,4 become ranks 0,1,2,3 in original order
    assert res[0] == (0, 4)
    assert res[1] == (1, 4)
    assert res[3] == (2, 4)
    assert res[4] == (3, 4)


def test_shrink_works_on_revoked_comm():
    async def main(ctx):
        ctx.comm.revoke()
        await ctx.compute(1.0)
        shrunk = await ctx.comm.shrink()
        return shrunk.size

    res, _ = run(3, main)
    assert res == [3, 3, 3]


def test_agree_ands_flags_and_tolerates_failures():
    async def main(ctx):
        await ctx.compute(1.0)
        flag = await ctx.comm.agree(0 if ctx.rank == 0 else 1)
        return flag

    res, _ = run(4, main, kills=[(3, 0.5)], raise_task_failures=False)
    assert res[:3] == [0, 0, 0]


def test_agree_all_ones():
    async def main(ctx):
        return await ctx.comm.agree(1)

    res, _ = run(3, main)
    assert res == [1, 1, 1]


def test_failure_ack_and_get_acked():
    async def main(ctx):
        await ctx.compute(1.0)
        g0 = ctx.comm.failure_get_acked()
        ctx.comm.failure_ack()
        g1 = ctx.comm.failure_get_acked()
        return (g0.size, g1.size)

    res, _ = run(3, main, kills=[(2, 0.5)], raise_task_failures=False)
    assert res[0] == (0, 1)
    assert res[1] == (0, 1)


def test_dead_rank_task_killed_not_failed():
    async def main(ctx):
        await ctx.compute(10.0)
        return "finished"

    res, uni = run(2, main, kills=[(1, 1.0)], raise_task_failures=False)
    assert res[0] == "finished"
    assert res[1] is None
    assert not uni.engine.failed_tasks


def test_host_slot_freed_on_death():
    async def main(ctx):
        await ctx.compute(5.0)
        return True

    res, uni = run(3, main, kills=[(1, 1.0)], raise_task_failures=False)
    dead = uni.jobs[0].procs[1]
    assert dead.dead and dead.death_time == 1.0
    total_occupied = sum(h.occupied for h in uni.hostfile)
    assert total_occupied == 0  # everyone finished or died


def test_multiple_simultaneous_failures_reported_together():
    async def main(ctx):
        await ctx.compute(1.0)
        try:
            await ctx.comm.barrier()
            return "ok"
        except ProcFailedError as e:
            return tuple(sorted(e.failed_ranks))

    res, _ = run(5, main, kills=[(1, 0.5), (3, 0.5)],
                 raise_task_failures=False)
    assert res[0] == (1, 3)
