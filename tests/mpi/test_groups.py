"""Group algebra (MPI_Group_*), incl. hypothesis property tests."""

import pytest
from hypothesis import given, strategies as st

from repro.mpi import IDENT, SIMILAR, UNEQUAL, UNDEFINED
from repro.mpi.errors import RankError
from repro.mpi.group import Group
from repro.mpi.process import Proc
from repro.machine import Host


def mk_procs(n):
    host = Host("h", slots=1000)
    return [Proc(f"p{i}", host) for i in range(n)]


def test_compare_ident_similar_unequal():
    procs = mk_procs(4)
    g1 = Group(procs)
    g2 = Group(procs)
    g3 = Group(reversed(procs))
    g4 = Group(procs[:2])
    assert g1.compare(g2) == IDENT
    assert g1.compare(g3) == SIMILAR
    assert g1.compare(g4) == UNEQUAL


def test_difference_keeps_my_order():
    procs = mk_procs(5)
    g = Group(procs)
    other = Group([procs[1], procs[3]])
    diff = g.difference(other)
    assert [p.uid for p in diff] == [procs[0].uid, procs[2].uid, procs[4].uid]


def test_translate_ranks_fig6_usage():
    """The paper's Fig. 6: translate failed-group ranks into the old group."""
    procs = mk_procs(6)
    old = Group(procs)
    shrunk = Group([p for i, p in enumerate(procs) if i not in (2, 4)])
    failed = old.difference(shrunk)
    assert failed.size == 2
    ranks = failed.translate_ranks(range(failed.size), old)
    assert ranks == [2, 4]


def test_translate_unmatched_gives_undefined():
    procs = mk_procs(3)
    g1 = Group(procs[:2])
    g2 = Group(procs[2:])
    assert g1.translate_ranks([0, 1], g2) == [UNDEFINED, UNDEFINED]


def test_translate_out_of_range():
    g = Group(mk_procs(2))
    with pytest.raises(RankError):
        g.translate_ranks([5], g)


def test_incl_excl():
    procs = mk_procs(5)
    g = Group(procs)
    sub = g.incl([4, 0, 2])
    assert [p.uid for p in sub] == [procs[4].uid, procs[0].uid, procs[2].uid]
    rest = g.excl([1, 3])
    assert [p.uid for p in rest] == [procs[0].uid, procs[2].uid, procs[4].uid]
    with pytest.raises(RankError):
        g.incl([9])
    with pytest.raises(RankError):
        g.excl([9])


def test_union_intersection():
    procs = mk_procs(4)
    a = Group(procs[:3])
    b = Group(procs[2:])
    assert [p.uid for p in a.union(b)] == [p.uid for p in procs]
    assert [p.uid for p in a.intersection(b)] == [procs[2].uid]


def test_rank_of_and_contains():
    procs = mk_procs(3)
    g = Group(procs)
    assert g.rank_of(procs[1]) == 1
    assert procs[1] in g
    outsider = mk_procs(1)[0]
    assert g.rank_of(outsider) == UNDEFINED
    assert outsider not in g


def test_duplicates_rejected():
    p = mk_procs(1)[0]
    with pytest.raises(RankError):
        Group([p, p])


def test_group_hash_eq():
    procs = mk_procs(3)
    assert Group(procs) == Group(procs)
    assert hash(Group(procs)) == hash(Group(procs))
    assert Group(procs) != Group(procs[:2])


@given(st.sets(st.integers(0, 14), max_size=15),
       st.sets(st.integers(0, 14), max_size=15))
def test_group_algebra_properties(a_idx, b_idx):
    procs = mk_procs(15)
    a = Group(procs[i] for i in sorted(a_idx))
    b = Group(procs[i] for i in sorted(b_idx))
    diff = a.difference(b)
    inter = a.intersection(b)
    # difference and intersection partition a
    assert diff.size + inter.size == a.size
    assert all(p not in b for p in diff)
    assert all(p in b for p in inter)
    # union contains both
    u = a.union(b)
    assert all(p in u for p in a)
    assert all(p in u for p in b)
    assert u.size == len(a_idx | b_idx)
    # compare is reflexive-IDENT
    assert a.compare(a) == IDENT
