"""Property test: the indexed MessageBoard matches exactly like a linear scan.

The board's bucketed fast paths (exact-key dict hits, the wildcard-counter
shortcut, the four-candidate-key scan) are pure optimisations — the
observable matching behaviour must be identical to the historical reference
semantics: receives match posted messages by earliest ``(arrival, seq)``,
messages wake the earliest-registered compatible receiver, and failures
fire in registration order.

Randomised seeded workloads drive the real board and a straightforward
linear-scan reference implementation through identical operation sequences
(posts, exact and wildcard receives, virtual-time advances, rank deaths)
and assert that every match, every failure, and the leftover board state
agree event-for-event.
"""

import random

import pytest

from repro.mpi.errors import ANY_SOURCE, ANY_TAG, ProcFailedError
from repro.mpi.matching import Message, MessageBoard, PendingRecv

N_RANKS = 4
N_OPS = 600


class _FakeEngine:
    def __init__(self):
        self.now = 0.0


class _RecordingFuture:
    """Stands in for a SimFuture; records how the board resolved it."""

    def __init__(self, log, rid):
        self.log = log
        self.rid = rid

    def set_result(self, msg, at=None):
        self.log.append(("match", self.rid, msg.seq, msg.src, msg.tag, at))

    def set_exception(self, exc, at=None):
        self.log.append(("fail", self.rid, type(exc).__name__, at))


class LinearBoard:
    """Reference implementation: flat lists, linear scans, no indexing."""

    def __init__(self, engine, detection_latency):
        self.engine = engine
        self.detection_latency = detection_latency
        self._seq = 0
        self._posted = []   # Message, in post order
        #: dst -> PendingRecv list in registration order.  Failure sweeps are
        #: per-destination (matching the board's contract), so the reference
        #: keys waiters by destination; a destination's entry disappears only
        #: when a failure sweep empties it, mirroring the board.
        self._waiting = {}

    @staticmethod
    def _compatible(source, tag, src, mtag):
        return ((source == ANY_SOURCE or source == src) and
                (tag == ANY_TAG or tag == mtag))

    def post(self, src, dst, tag, payload, arrival):
        self._seq += 1
        msg = Message(src, dst, tag, payload, arrival, self._seq)
        waiters = self._waiting.get(dst, ())
        for i, recv in enumerate(waiters):
            if self._compatible(recv.source, recv.tag, src, tag):
                del waiters[i]
                recv.future.set_result(msg, at=arrival)
                return
        self._posted.append(msg)

    def register_recv(self, dst, source, tag, future, dead_ranks):
        best_i = None
        best = None
        for i, msg in enumerate(self._posted):
            if msg.dst == dst and self._compatible(source, tag,
                                                   msg.src, msg.tag):
                cand = (msg.arrival, msg.seq)
                if best is None or cand < best:
                    best = cand
                    best_i = i
        if best_i is not None:
            msg = self._posted.pop(best_i)
            future.set_result(msg, at=max(msg.arrival, self.engine.now))
            return
        if source != ANY_SOURCE and source in dead_ranks:
            future.set_exception(
                ProcFailedError(f"recv source rank {source} is dead",
                                failed_ranks=(source,)),
                at=self.engine.now + self.detection_latency)
            return
        self._seq += 1
        self._waiting.setdefault(dst, []).append(
            PendingRecv(dst, source, tag, future, self._seq))

    def on_rank_death(self, rank, now):
        at = now + self.detection_latency
        for dst in list(self._waiting):
            waiters = self._waiting[dst]
            if not waiters:
                continue
            doomed = [r for r in waiters if r.source == rank]
            if not doomed:
                continue
            remaining = [r for r in waiters if r.source != rank]
            if remaining:
                self._waiting[dst] = remaining
            else:
                del self._waiting[dst]
            for recv in doomed:
                recv.future.set_exception(
                    ProcFailedError(f"recv source rank {rank} died",
                                    failed_ranks=(rank,)),
                    at=at)

    # flat views mirroring MessageBoard's diagnostic properties
    @property
    def posted(self):
        out = {}
        for msg in sorted(self._posted, key=lambda m: m.seq):
            out.setdefault(msg.dst, []).append(msg)
        return out

    @property
    def waiting(self):
        return {dst: list(waiters)
                for dst, waiters in self._waiting.items() if waiters}


def _posted_view(board):
    return {dst: [(m.src, m.tag, m.arrival, m.seq) for m in msgs]
            for dst, msgs in board.posted.items() if msgs}


def _waiting_view(board):
    return {dst: [(r.source, r.tag, r.seq) for r in recvs]
            for dst, recvs in board.waiting.items() if recvs}


def _run_workload(seed, with_deaths):
    rng = random.Random(seed)
    engine = _FakeEngine()
    real = MessageBoard(engine, detection_latency=0.25)
    ref = LinearBoard(engine, detection_latency=0.25)
    real_log, ref_log = [], []
    dead = set()
    rid = 0

    for _ in range(N_OPS):
        roll = rng.random()
        if roll < 0.10:
            # arrivals equal the current time, so advancing the clock keeps
            # the board's arrival-monotonicity invariant automatically
            engine.now += rng.choice([0.0, 0.25, 1.0])
        elif with_deaths and roll < 0.13 and len(dead) < N_RANKS - 1:
            rank = rng.randrange(N_RANKS)
            if rank not in dead:
                dead.add(rank)
                real.on_rank_death(rank, engine.now)
                ref.on_rank_death(rank, engine.now)
        elif roll < 0.55:
            src = rng.randrange(N_RANKS)
            dst = rng.randrange(N_RANKS)
            tag = rng.randrange(3)
            real.post(src, dst, tag, None, engine.now)
            ref.post(src, dst, tag, None, engine.now)
        else:
            dst = rng.randrange(N_RANKS)
            source = rng.choice([ANY_SOURCE] + list(range(N_RANKS)))
            tag = rng.choice([ANY_TAG, 0, 1, 2])
            rid += 1
            real.register_recv(dst, source, tag,
                               _RecordingFuture(real_log, rid),
                               frozenset(dead))
            ref.register_recv(dst, source, tag,
                              _RecordingFuture(ref_log, rid),
                              frozenset(dead))
        assert real_log == ref_log, f"diverged at op {len(real_log)}"

    assert real_log == ref_log
    assert _posted_view(real) == _posted_view(ref)
    assert _waiting_view(real) == _waiting_view(ref)
    return real_log


@pytest.mark.parametrize("seed", range(10))
def test_indexed_matching_equals_linear_scan(seed):
    log = _run_workload(seed, with_deaths=False)
    assert any(entry[0] == "match" for entry in log)


@pytest.mark.parametrize("seed", range(10, 16))
def test_indexed_matching_equals_linear_scan_with_deaths(seed):
    _run_workload(seed, with_deaths=True)


def test_wildcard_tie_break_prefers_earliest_arrival():
    """ANY_SOURCE/ANY_TAG take the earliest-arrival posted message even when
    a later bucket was created first."""
    engine = _FakeEngine()
    board = MessageBoard(engine, detection_latency=0.0)
    log = []
    board.post(src=2, dst=0, tag=1, payload=None, arrival=0.0)
    engine.now = 1.0
    board.post(src=1, dst=0, tag=0, payload=None, arrival=1.0)
    board.register_recv(0, ANY_SOURCE, ANY_TAG,
                        _RecordingFuture(log, 1), frozenset())
    board.register_recv(0, ANY_SOURCE, ANY_TAG,
                        _RecordingFuture(log, 2), frozenset())
    assert [(e[0], e[1], e[3], e[4]) for e in log] == [
        ("match", 1, 2, 1),  # arrival 0.0 message (src=2, tag=1) first
        ("match", 2, 1, 0),
    ]


def test_post_wakes_earliest_registered_receiver():
    """A message wakes the earliest-registered compatible receiver, even when
    an exact-key receiver registered later."""
    engine = _FakeEngine()
    board = MessageBoard(engine, detection_latency=0.0)
    log = []
    board.register_recv(0, ANY_SOURCE, ANY_TAG,
                        _RecordingFuture(log, 1), frozenset())
    board.register_recv(0, 3, 7, _RecordingFuture(log, 2), frozenset())
    board.post(src=3, dst=0, tag=7, payload=None, arrival=0.0)
    board.post(src=3, dst=0, tag=7, payload=None, arrival=0.0)
    assert [e[1] for e in log] == [1, 2]
