"""Deterministic wildcard matching under contention.

The matching rule (see :mod:`repro.mpi.matching`): a wildcard receive
scanning already-posted messages picks the earliest *arrival*; ties break
on posting sequence.  These tests pin that tie-breaking down and verify it
is stable across identical runs — the property the analysis layer's race
detector (repro.analysis.races) relies on when it reports that a race,
although present, resolves deterministically in the simulator.
"""

import pytest

from repro.machine.presets import IDEAL, OPL
from repro.mpi.errors import ANY_SOURCE, ANY_TAG
from repro.mpi.universe import Universe


def contended_run(machine=OPL, *, delays=(0.3, 0.1, 0.2), payload="r{}"):
    """3 senders with staggered starts racing into rank 0's wildcard
    receives; returns the received payload order."""
    order = []

    async def main(ctx):
        if ctx.rank == 0:
            await ctx.compute(1.0)  # let every message arrive first
            for _ in range(ctx.size - 1):
                got, status = await ctx.comm.recv(
                    source=ANY_SOURCE, tag=ANY_TAG, return_status=True)
                order.append((got, status.source))
        else:
            await ctx.compute(delays[ctx.rank - 1])
            await ctx.comm.send(payload.format(ctx.rank), dest=0,
                                tag=ctx.rank)
        return None

    uni = Universe(machine)
    uni.launch(4, main)
    uni.run()
    return order


def test_earliest_arrival_wins():
    """Wildcard receives drain posted messages in arrival order, not in
    sender-rank order."""
    order = contended_run(delays=(0.3, 0.1, 0.2))
    # sender start delays: rank1=0.3, rank2=0.1, rank3=0.2 -> arrivals 2,3,1
    assert [src for _, src in order] == [2, 3, 1]
    assert [got for got, _ in order] == ["r2", "r3", "r1"]


def test_simultaneous_arrivals_tie_break_on_posting_order():
    """Equal arrival times: the first-posted message wins (seq order), and
    on an IDEAL machine every send arrives at the same instant."""
    order = contended_run(machine=IDEAL, delays=(0.0, 0.0, 0.0))
    # identical arrival time for all three; posting order is rank order
    assert [src for _, src in order] == [1, 2, 3]


def test_matching_is_stable_across_runs():
    """Two runs of the identical contended program must agree exactly —
    the determinism claim behind 'the simulator resolves races stably'."""
    first = contended_run()
    second = contended_run()
    assert first == second


def test_blocked_wildcard_matches_first_arrival():
    """When the receive is posted *before* any message exists, the first
    message to arrive wakes it, regardless of sender rank."""
    got = {}

    async def main(ctx):
        if ctx.rank == 0:
            got["msg"] = await ctx.comm.recv(source=ANY_SOURCE)
        elif ctx.rank == 1:
            await ctx.compute(2.0)
            await ctx.comm.send("slow", dest=0)
        else:
            await ctx.compute(0.5)
            await ctx.comm.send("fast", dest=0)
        return None

    uni = Universe(OPL)
    uni.launch(3, main)
    uni.run(raise_task_failures=False)
    assert got["msg"] == "fast"
