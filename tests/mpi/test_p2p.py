"""Point-to-point semantics."""

import numpy as np
import pytest

from repro.mpi import ANY_SOURCE, ANY_TAG, Status, run_ranks
from repro.mpi.datatypes import clone_payload, payload_nbytes

from ..conftest import run_ranks as run


def test_send_recv_roundtrip():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send({"x": 1}, dest=1, tag=5)
            return None
        return await ctx.comm.recv(source=0, tag=5)

    res, _ = run(2, main)
    assert res[1] == {"x": 1}


def test_tag_matching_is_selective():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("a", dest=1, tag=1)
            await ctx.comm.send("b", dest=1, tag=2)
        else:
            b = await ctx.comm.recv(source=0, tag=2)
            a = await ctx.comm.recv(source=0, tag=1)
            return (a, b)

    res, _ = run(2, main)
    assert res[1] == ("a", "b")


def test_fifo_order_same_tag():
    async def main(ctx):
        if ctx.rank == 0:
            for i in range(5):
                await ctx.comm.send(i, dest=1, tag=0)
        else:
            return [await ctx.comm.recv(source=0, tag=0) for _ in range(5)]

    res, _ = run(2, main)
    assert res[1] == [0, 1, 2, 3, 4]


def test_any_source_any_tag():
    async def main(ctx):
        if ctx.rank == 2:
            got = [await ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                   for _ in range(2)]
            return sorted(got)
        await ctx.comm.send(ctx.rank * 10, dest=2, tag=ctx.rank)
        return None

    res, _ = run(3, main)
    assert res[2] == [0, 10]


def test_recv_returns_status():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send("payload", dest=1, tag=9)
        else:
            obj, status = await ctx.comm.recv(source=ANY_SOURCE, tag=ANY_TAG,
                                              return_status=True)
            assert isinstance(status, Status)
            return (obj, status.source, status.tag)

    res, _ = run(2, main)
    assert res[1] == ("payload", 0, 9)


def test_numpy_payload_has_value_semantics():
    """Receiver mutations must not alias the sender's array."""
    async def main(ctx):
        if ctx.rank == 0:
            arr = np.ones(4)
            await ctx.comm.send(arr, dest=1)
            await ctx.comm.barrier()
            return arr.sum()
        got = await ctx.comm.recv(source=0)
        got[:] = 99.0
        await ctx.comm.barrier()
        return got.sum()

    res, _ = run(2, main)
    assert res[0] == 4.0
    assert res[1] == 4 * 99.0


def test_sender_mutation_after_send_not_visible():
    async def main(ctx):
        if ctx.rank == 0:
            arr = np.zeros(3)
            await ctx.comm.send(arr, dest=1)
            arr[:] = -1.0
        else:
            got = await ctx.comm.recv(source=0)
            return got.tolist()

    res, _ = run(2, main)
    assert res[1] == [0.0, 0.0, 0.0]


def test_isend_irecv():
    async def main(ctx):
        if ctx.rank == 0:
            reqs = [ctx.comm.isend(i, dest=1, tag=i) for i in range(3)]
            for r in reqs:
                await r.wait()
        else:
            reqs = [ctx.comm.irecv(source=0, tag=i) for i in range(3)]
            return [await r.wait() for r in reqs]

    res, _ = run(2, main)
    assert res[1] == [0, 1, 2]


def test_sendrecv_exchange():
    async def main(ctx):
        other = 1 - ctx.rank
        return await ctx.comm.sendrecv(f"from{ctx.rank}", dest=other,
                                       source=other)

    res, _ = run(2, main)
    assert res == ["from1", "from0"]


def test_self_send_recv():
    async def main(ctx):
        req = ctx.comm.isend("self", dest=ctx.rank, tag=3)
        msg = await ctx.comm.recv(source=ctx.rank, tag=3)
        await req.wait()
        return msg

    res, _ = run(1, main)
    assert res == ["self"]


def test_rank_bounds_checked():
    from repro.mpi import RankError

    async def main(ctx):
        with pytest.raises(RankError):
            await ctx.comm.send("x", dest=99)
        with pytest.raises(RankError):
            await ctx.comm.recv(source=99)
        return True

    res, _ = run(2, main)
    assert all(res)


# ---------------------------------------------------------------------------
def test_payload_nbytes_estimates():
    assert payload_nbytes(None) == 0
    assert payload_nbytes(np.zeros(10)) == 80
    assert payload_nbytes(b"abc") == 3
    assert payload_nbytes("abcd") == 4
    assert payload_nbytes(3) == 8
    assert payload_nbytes([np.zeros(2), np.zeros(3)]) == 8 + 16 + 24
    assert payload_nbytes({"k": np.zeros(1)}) >= 8 + 8


def test_clone_payload_deep_for_arrays():
    arr = np.arange(3)
    cloned = clone_payload({"a": [arr, (arr,)], "b": 5})
    cloned["a"][0][0] = 99
    cloned["a"][1][0][1] = 98
    assert arr.tolist() == [0, 1, 2]
    assert clone_payload("str") == "str"
