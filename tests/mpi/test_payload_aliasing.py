"""Value semantics vs zero-copy ownership transfer of numpy payloads.

``send``/``isend`` default to MPI value semantics: the payload is cloned at
the call, so later sender-side mutation is invisible to the receiver.
``copy=False`` transfers ownership instead — nothing is cloned, the
receiver gets a read-only view of the sender's memory, and the caller
promises not to touch the buffer again (the halo-exchange pattern: send a
freshly built ``.copy()`` of a boundary row).
"""

import numpy as np
import pytest

from repro.machine.presets import IDEAL
from repro.mpi import Universe


def _run(entry, n=2):
    uni = Universe(IDEAL)
    job = uni.launch(n, entry)
    uni.run()
    return job.results()


def test_default_isend_copies_at_send_time():
    async def main(ctx):
        if ctx.rank == 0:
            buf = np.arange(4.0)
            req = ctx.comm.isend(buf, dest=1, tag=0)
            buf[:] = -1.0  # mutate after isend: receiver must not see this
            await req.wait()
        else:
            got = await ctx.comm.recv(source=0, tag=0)
            return got.tolist()

    assert _run(main)[1] == [0.0, 1.0, 2.0, 3.0]


def test_copy_false_with_private_copy_preserves_send_time_contents():
    """The halo-exchange pattern: a fresh ``.copy()`` sent with
    ``copy=False`` is safe even if the original buffer keeps changing."""
    async def main(ctx):
        if ctx.rank == 0:
            buf = np.arange(4.0)
            req = ctx.comm.isend(buf.copy(), dest=1, tag=0, copy=False)
            buf[:] = -1.0  # only the original changes, not the sent copy
            await req.wait()
        else:
            got = await ctx.comm.recv(source=0, tag=0)
            return got.tolist()

    assert _run(main)[1] == [0.0, 1.0, 2.0, 3.0]


def test_copy_false_aliases_the_sender_buffer():
    """Pin the ownership-transfer contract: with ``copy=False`` and no
    private copy, sender-side mutation after ``isend`` IS observed by the
    receiver, and the received view is read-only."""
    async def main(ctx):
        if ctx.rank == 0:
            buf = np.arange(4.0)
            req = ctx.comm.isend(buf, dest=1, tag=0, copy=False)
            buf[:] = -1.0  # contract violation: visible to the receiver
            await req.wait()
        else:
            got = await ctx.comm.recv(source=0, tag=0)
            assert not got.flags.writeable
            with pytest.raises(ValueError):
                got[0] = 99.0
            return got.tolist()

    assert _run(main)[1] == [-1.0, -1.0, -1.0, -1.0]


def test_blocking_send_copy_false_gives_read_only_view():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(np.ones(3), dest=1, tag=7, copy=False)
        else:
            got = await ctx.comm.recv(source=0, tag=7)
            assert not got.flags.writeable
            return float(got.sum())

    assert _run(main)[1] == 3.0


def test_copy_false_freezes_arrays_inside_containers():
    async def main(ctx):
        if ctx.rank == 0:
            payload = {"row": np.arange(3.0), "meta": (1, np.zeros(2))}
            await ctx.comm.send(payload, dest=1, tag=0, copy=False)
        else:
            got = await ctx.comm.recv(source=0, tag=0)
            assert not got["row"].flags.writeable
            assert not got["meta"][1].flags.writeable
            return got["row"].tolist()

    assert _run(main)[1] == [0.0, 1.0, 2.0]
