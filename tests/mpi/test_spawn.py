"""Dynamic processes: spawn_multiple, intercomm merge, parent linkage."""

import pytest

from repro.machine import Hostfile
from repro.mpi import RankError

from ..conftest import run_ranks as run


def test_spawn_creates_children_with_parent_intercomm():
    async def child(ctx):
        parent = ctx.get_parent()
        assert parent is not None
        assert parent.remote_size == 2  # the spawning group
        assert parent.local_size == 3
        return ("child", ctx.rank, ctx.size)

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(3, child)
        assert inter.remote_size == 3
        assert inter.local_size == 2
        return ("parent", ctx.rank)

    res, uni = run(2, main)
    assert res == [("parent", 0), ("parent", 1)]
    child_job = uni.jobs[1]
    assert child_job.results() == [("child", 0, 3), ("child", 1, 3),
                                   ("child", 2, 3)]


def test_initial_launch_has_no_parent():
    async def main(ctx):
        return ctx.get_parent() is None

    res, _ = run(2, main)
    assert all(res)


def test_merge_low_high_ordering():
    async def child(ctx):
        merged = await ctx.get_parent().merge(high=True)
        return (merged.rank, merged.size)

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(2, child)
        merged = await inter.merge(high=False)
        return (merged.rank, merged.size)

    res, uni = run(3, main)
    assert res == [(0, 5), (1, 5), (2, 5)]
    assert uni.jobs[1].results() == [(3, 5), (4, 5)]


def test_merge_high_parents_get_upper_ranks():
    async def child(ctx):
        merged = await ctx.get_parent().merge(high=False)
        return merged.rank

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(2, child)
        merged = await inter.merge(high=True)
        return merged.rank

    res, uni = run(2, main)
    assert res == [2, 3]
    assert uni.jobs[1].results() == [0, 1]


def test_host_pinned_spawn():
    async def child(ctx):
        return ctx.proc.host.name

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(
            2, child, host_names=["node001", "node000"])
        return True

    hf = Hostfile.uniform(2, slots=8)
    res, uni = run(2, main, hostfile=hf)
    assert uni.jobs[1].results() == ["node001", "node000"]


def test_spawn_unknown_host_errors():
    async def child(ctx):
        return None

    async def main(ctx):
        await ctx.comm.spawn_multiple(1, child, host_names=["nope"])

    from repro.simkernel.errors import TaskFailedError
    with pytest.raises((RuntimeError, TaskFailedError)):
        run(1, main)


def test_intercomm_p2p():
    async def child(ctx):
        parent = ctx.get_parent()
        msg = await parent.recv(source=0, tag=1)
        await parent.send(msg * 2, dest=0, tag=2)
        return msg

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(1, child)
        if ctx.rank == 0:
            await inter.send(21, dest=0, tag=1)
            return await inter.recv(source=0, tag=2)
        return None

    res, _ = run(2, main)
    assert res[0] == 42


def test_intercomm_agree_is_local_group():
    """Parents merge-then-agree while children agree-then-merge — the
    paper's exact call orders (Fig. 5 l.14-15 vs Fig. 3 l.21-22) — must not
    deadlock, which requires local-group agreement semantics."""
    async def child(ctx):
        parent = ctx.get_parent()
        await parent.agree(1)
        merged = await parent.merge(high=True)
        return merged.rank

    async def main(ctx):
        inter = await ctx.comm.spawn_multiple(2, child)
        merged = await inter.merge(high=False)
        flag = await inter.agree(1)
        return (merged.rank, flag)

    res, uni = run(2, main)
    assert res == [(0, 1), (1, 1)]
    assert uni.jobs[1].results() == [2, 3]


def test_spawned_children_start_after_spawn_cost(opl):
    async def child(ctx):
        return ctx.wtime()

    async def main(ctx):
        await ctx.compute(1.0)
        await ctx.comm.spawn_multiple(1, child)
        return ctx.wtime()

    res, uni = run(2, main, machine=opl)
    child_start = uni.jobs[1].results()[0]
    assert child_start >= 1.0
    assert res[0] == pytest.approx(child_start)


def test_set_parent_null():
    async def child(ctx):
        assert ctx.get_parent() is not None
        ctx.set_parent_null()
        return ctx.get_parent() is None

    async def main(ctx):
        await ctx.comm.spawn_multiple(1, child)
        return True

    res, uni = run(1, main)
    assert uni.jobs[1].results() == [True]


def test_spawn_consumes_host_slots():
    async def child(ctx):
        await ctx.compute(1.0)
        return None

    async def main(ctx):
        await ctx.comm.spawn_multiple(1, child, host_names=["node000"])
        return None

    hf = Hostfile.uniform(1, slots=2)
    res, uni = run(1, main, hostfile=hf)
    assert uni.hostfile[0].occupied == 0  # all released at exit
