"""Communication statistics counters."""

import numpy as np

from repro.mpi.stats import CommStats

from ..conftest import run_ranks as run


def test_message_counters():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(np.zeros(10), dest=1)
        elif ctx.rank == 1:
            await ctx.comm.recv(source=0)
        return None

    _, uni = run(2, main)
    assert uni.stats.messages == 1
    assert uni.stats.bytes_sent == 80


def test_collective_counters():
    async def main(ctx):
        await ctx.comm.barrier()
        await ctx.comm.allreduce(1)
        await ctx.comm.bcast("x" if ctx.rank == 0 else None)
        return None

    _, uni = run(3, main)
    assert uni.stats.collectives["barrier"] == 3
    assert uni.stats.collectives["allreduce"] == 3
    assert uni.stats.collectives["bcast"] == 3


def test_comm_creation_and_kill_counters():
    async def main(ctx):
        await ctx.comm.split(ctx.rank % 2, ctx.rank)
        await ctx.compute(2.0)
        return None

    _, uni = run(4, main, kills=[(3, 1.0)], raise_task_failures=False)
    assert uni.stats.comms_created >= 3   # world + two split colors
    assert uni.stats.kills == 1


def test_spawn_counters():
    async def child(ctx):
        return None

    async def main(ctx):
        await ctx.comm.spawn_multiple(2, child)
        return None

    _, uni = run(2, main)
    assert uni.stats.spawns == 1
    assert uni.stats.procs_spawned == 2


def test_summary_format():
    s = CommStats()
    s.record_message(100)
    s.record_collective("barrier")
    text = s.summary()
    assert "messages=1" in text and "barrier:1" in text
