"""MPI event tracing."""

from repro.mpi.tracing import TraceEvent, Tracer

from ..conftest import run_ranks as run


def traced_run(n, entry, **kw):
    from repro.mpi.universe import Universe
    from repro.machine.presets import IDEAL
    uni = Universe(IDEAL)
    uni.tracer = Tracer()
    job = uni.launch(n, entry)
    for rank, at in kw.get("kills", ()):
        uni.kill_rank(job, rank, at=at)
    uni.run(raise_task_failures=False)
    return job, uni


def test_messages_and_collectives_traced():
    async def main(ctx):
        await ctx.comm.barrier()
        if ctx.rank == 0:
            await ctx.comm.send("x", dest=1, tag=3)
        elif ctx.rank == 1:
            await ctx.comm.recv(source=0, tag=3)
        return None

    job, uni = traced_run(2, main)
    t = uni.tracer
    assert len(t.filter(kind="coll")) == 2      # two barrier calls
    sends = t.filter(kind="send")
    assert len(sends) == 1
    assert "0->1 tag=3" in sends[0].detail


def test_kill_and_spawn_traced():
    async def child(ctx):
        return None

    async def main(ctx):
        await ctx.compute(1.0)
        if ctx.rank == 0:
            await (await ctx.comm.shrink()).spawn_multiple(1, child)
        return None

    # kill rank 1 so shrink has something to do
    job, uni = traced_run(2, main, kills=[(1, 0.5)])
    kinds = {e.kind for e in uni.tracer.events}
    assert "kill" in kinds and "spawn" in kinds


def test_histogram_and_timeline():
    async def main(ctx):
        await ctx.comm.barrier()
        await ctx.comm.allreduce(1)
        return None

    job, uni = traced_run(3, main)
    hist = uni.tracer.histogram()
    assert hist[("coll", "barrier")] == 3
    assert hist[("coll", "allreduce")] == 3
    text = uni.tracer.timeline(limit=4)
    assert "barrier" in text
    assert "more)" in text  # truncated beyond the limit


def test_tracer_bounded():
    t = Tracer(max_events=2)
    for i in range(5):
        t.record(float(i), "a", "send", "x")
    assert len(t) == 2
    assert t.dropped == 3
    assert "3 events dropped" in t.timeline()
    assert t.histogram()[("dropped", "")] == 3


def test_tracer_save_load_roundtrip(tmp_path):
    t = Tracer(max_events=3)
    for i in range(5):
        t.record(float(i), f"p{i}", "send", f"c {i}->0 tag=0")
    path = tmp_path / "trace.jsonl"
    t.save(path)
    back = Tracer.load(path)
    assert len(back) == 3
    assert back.dropped == 2
    assert back.events[1].actor == "p1"
    assert back.events[1].time == 1.0


def test_tracing_off_by_default_no_overhead():
    async def main(ctx):
        await ctx.comm.barrier()
        return None

    from ..conftest import run_ranks
    _, uni = run_ranks(2, main)
    assert uni.tracer is None


def test_event_str():
    e = TraceEvent(1.5, "proc", "send", "detail")
    assert "send" in str(e) and "proc" in str(e)
