"""Virtual-time accounting of MPI operations."""

import numpy as np
import pytest

from repro.machine import MachineSpec, ZERO_ULFM

from ..conftest import run_ranks as run

SIMPLE = MachineSpec("simple", 100, alpha=1e-3, beta=1e-6, flop_rate=1e6,
                     t_io=0.5, disk_bandwidth=1e9, ulfm=ZERO_ULFM,
                     failure_detection_latency=1e-4)


def test_p2p_message_charges_alpha_beta():
    async def main(ctx):
        if ctx.rank == 0:
            payload = np.zeros(1000)  # 8000 B
            await ctx.comm.send(payload, dest=1)
            return ctx.wtime()
        await ctx.comm.recv(source=0)
        return ctx.wtime()

    res, _ = run(2, main, machine=SIMPLE)
    cost = 1e-3 + 8000 * 1e-6
    assert res[0] == pytest.approx(cost)      # sender: injection time
    assert res[1] == pytest.approx(cost)      # arrival at send_time+cost


def test_receiver_waits_for_late_sender():
    async def main(ctx):
        if ctx.rank == 0:
            await ctx.compute(2.0)
            await ctx.comm.send("x", dest=1)
        else:
            await ctx.comm.recv(source=0)
            return ctx.wtime()

    res, _ = run(2, main, machine=SIMPLE)
    assert res[1] >= 2.0


def test_compute_flops_charge():
    async def main(ctx):
        await ctx.compute(flops=5e6)
        return ctx.wtime()

    res, _ = run(1, main, machine=SIMPLE)
    assert res[0] == pytest.approx(5.0)


def test_disk_costs_charged():
    async def main(ctx):
        await ctx.disk_write(0)
        t1 = ctx.wtime()
        await ctx.disk_read(0)
        return (t1, ctx.wtime())

    res, _ = run(1, main, machine=SIMPLE)
    assert res[0][0] == pytest.approx(0.5)
    assert res[0][1] == pytest.approx(0.5 + 0.25)


def test_collective_completion_at_max_arrival_plus_cost():
    async def main(ctx):
        await ctx.compute(float(ctx.rank))
        await ctx.comm.barrier()
        return ctx.wtime()

    res, _ = run(3, main, machine=SIMPLE)
    expected = 2.0 + SIMPLE.barrier_cost(3)
    assert all(r == pytest.approx(expected) for r in res)


def test_ideal_machine_everything_free(ideal):
    async def main(ctx):
        await ctx.comm.barrier()
        await ctx.comm.allreduce(np.zeros(10_000))
        if ctx.rank == 0:
            await ctx.comm.send(np.zeros(10_000), dest=1)
        elif ctx.rank == 1:
            await ctx.comm.recv(source=0)
        await ctx.disk_write(10**9)
        return ctx.wtime()

    res, _ = run(2, main, machine=ideal)
    assert res == [0.0, 0.0]


def test_wtime_monotone_across_ops():
    async def main(ctx):
        times = [ctx.wtime()]
        for _ in range(3):
            await ctx.comm.barrier()
            times.append(ctx.wtime())
        assert times == sorted(times)
        return True

    res, _ = run(4, main, machine=SIMPLE)
    assert all(res)
