"""End-to-end observability: real runs produce phase breakdowns, stats
feed the registry, traces export to valid Chrome timelines."""

import pytest

from repro.core import AppConfig, baseline_solve_time, plan_failures, run_app
from repro.ft.failure_injection import Kill
from repro.machine.presets import IDEAL, OPL
from repro.mpi.tracing import Tracer
from repro.mpi.universe import run_ranks
from repro.obs import PHASES, validate_chrome_trace
from repro.obs.timeline import chrome_trace


def cr_cfg(**kw):
    kw.setdefault("n", 6)
    kw.setdefault("level", 4)
    kw.setdefault("technique_code", "CR")
    kw.setdefault("steps", 16)
    kw.setdefault("diag_procs", 2)
    kw.setdefault("checkpoint_count", 4)
    return AppConfig(**kw)


def test_failure_free_run_has_solve_and_combine_phases():
    m = run_app(cr_cfg(), OPL)
    assert set(m.phase_breakdown) >= {"solve", "combine", "checkpoint_write"}
    assert all(p in PHASES for p in m.phase_breakdown)
    assert all(v >= 0 for v in m.phase_breakdown.values())
    assert m.phase_breakdown["solve"] > 0


def test_real_failure_run_reports_recovery_phases():
    # 22-rank world: below ~19 cores the ULFM cost curves extrapolate to
    # zero, which would make the > 0 assertions vacuous
    cfg = cr_cfg(n=7, diag_procs=4)
    t_solve = baseline_solve_time(cfg, OPL)
    kills = plan_failures(cr_cfg(n=7, diag_procs=4), 1,
                          at=t_solve * 0.5, seed=0)
    m = run_app(cr_cfg(n=7, diag_procs=4), OPL, kills=kills)
    bd = m.phase_breakdown
    # the whole ULFM pipeline must have been timed
    for phase in ("detect", "shrink", "spawn", "merge", "agree",
                  "reconstruct", "checkpoint_read", "recompute"):
        assert bd.get(phase, 0.0) > 0.0, f"missing phase {phase}"
    # sub-phases are bounded by their enclosing reconstruction
    assert bd["shrink"] <= bd["reconstruct"] + 1e-9
    # span-measured shrink matches the ReconstructTimers measurement
    assert bd["shrink"] == pytest.approx(m.t_shrink, rel=1e-6)
    assert bd["reconstruct"] == pytest.approx(m.t_reconstruct, rel=1e-6)


def test_phase_by_grid_keys_are_grid_ids():
    cfg = cr_cfg(simulated_lost_gids=(1,))
    m = run_app(cfg, IDEAL)
    assert m.phase_by_grid
    for gid, phases in m.phase_by_grid.items():
        int(gid)  # keys are stringified grid ids
        assert all(p in PHASES for p in phases)
    assert "recovery" in m.phase_by_grid["1"]


def test_phase_breakdown_serialises_in_metrics_dict():
    import json
    m = run_app(cr_cfg(), IDEAL)
    d = json.loads(json.dumps(m.to_dict(), default=str))
    assert d["phase_breakdown"] == pytest.approx(m.phase_breakdown)


def test_traced_run_exports_valid_chrome_timeline(tmp_path):
    cfg = cr_cfg()
    t_solve = baseline_solve_time(cfg, OPL)
    kills = [Kill(5, t_solve * 0.5)]
    tracer = Tracer()
    run_app(cr_cfg(), OPL, kills=kills, tracer=tracer)
    span_events = [e for e in tracer.events if e.kind == "span"]
    assert span_events, "spans must land in the tracer stream"
    doc = chrome_trace(tracer.events)
    validate_chrome_trace(doc)
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "reconstruct" in names and "checkpoint_write" in names


def test_comm_stats_is_registry_facade():
    """Message counters reported through CommStats must be readable from
    the universe's metrics registry (single source of truth)."""

    async def main(ctx):
        if ctx.rank == 0:
            await ctx.comm.send(b"x" * 64, dest=1, tag=1)
            return None
        return await ctx.comm.recv(source=0, tag=1)

    from repro.machine.presets import IDEAL as M
    from repro.mpi.universe import Universe
    uni = Universe(M)
    job = uni.launch(2, main)
    uni.run()
    assert job.results()[1] == b"x" * 64
    assert uni.stats.messages == 1
    assert uni.obs.registry.counter("mpi_messages").value == 1
    assert uni.obs.registry.counter("mpi_bytes_sent").value == \
        uni.stats.bytes_sent > 0


def test_rank_context_span_accumulates_in_universe():
    async def main(ctx):
        with ctx.span("solve", technique="AC"):
            await ctx.compute(seconds=0.5)
        return ctx.rank

    from repro.machine.presets import OPL as M
    from repro.mpi.universe import Universe
    uni = Universe(M)
    job = uni.launch(2, main)
    uni.run()
    assert job.results() == [0, 1]
    totals = uni.obs.phase_totals()
    assert totals["solve"] == pytest.approx(0.5)
    assert uni.obs.phase_totals("sum")["solve"] == pytest.approx(1.0)
