"""Metrics registry: instrument identity, labels, aggregation."""

import json

import pytest

from repro.obs import MetricsRegistry


def test_counter_basic():
    reg = MetricsRegistry()
    c = reg.counter("mpi_messages")
    c.inc()
    c.inc(4)
    assert c.value == 5


def test_counter_cannot_decrease():
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        reg.counter("n").inc(-1)


def test_counter_labels_are_distinct_instruments():
    reg = MetricsRegistry()
    a = reg.counter("collectives", op="bcast")
    b = reg.counter("collectives", op="barrier")
    a.inc(3)
    b.inc(1)
    assert a.value == 3 and b.value == 1
    assert reg.counter_total("collectives") == 4


def test_counter_handle_is_cached():
    """Hot paths keep a handle and mutate ``.value`` directly; the same
    (name, labels) must resolve to the same object regardless of label
    order."""
    reg = MetricsRegistry()
    a = reg.counter("x", phase="solve", technique="CR")
    b = reg.counter("x", technique="CR", phase="solve")
    assert a is b
    a.value += 2
    assert reg.counter("x", phase="solve", technique="CR").value == 2


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("queue_depth")
    g.set(7.0)
    g.dec(2.0)
    g.inc(1.0)
    assert g.value == 6.0


def test_histogram_observe_and_summary():
    reg = MetricsRegistry()
    h = reg.histogram("phase_seconds", phase="shrink")
    for v in (0.5, 1.5, 2.5):
        h.observe(v)
    assert h.count == 3
    assert h.sum == pytest.approx(4.5)
    assert h.min == 0.5 and h.max == 2.5
    assert h.mean == pytest.approx(1.5)


def test_histogram_buckets_cumulative():
    reg = MetricsRegistry()
    h = reg.histogram("lat", buckets=(1.0, 10.0))
    h.observe(0.5)
    h.observe(5.0)
    h.observe(50.0)   # beyond the last edge: only count/sum see it
    assert h.bucket_counts == [1, 2]
    assert h.count == 3


def test_counters_query_by_name():
    reg = MetricsRegistry()
    reg.counter("collectives", op="bcast").inc()
    reg.counter("collectives", op="agree").inc(2)
    reg.counter("other").inc(9)
    by_op = {dict(c.labels)["op"]: c.value
             for c in reg.counters("collectives")}
    assert by_op == {"bcast": 1, "agree": 2}
    assert len(reg.counters()) == 3


def test_to_dict_round_trips_json():
    reg = MetricsRegistry()
    reg.counter("messages", technique="RC").inc(3)
    reg.gauge("depth").set(2)
    reg.histogram("phase_seconds", phase="merge").observe(0.25)
    doc = json.loads(json.dumps(reg.to_dict()))
    assert doc["counters"][0]["labels"] == {"technique": "RC"}
    assert doc["gauges"][0]["value"] == 2
    assert doc["histograms"][0]["count"] == 1
