"""Validators for the machine-readable observability outputs."""

import pytest

from repro.obs import (EXPERIMENT_SCHEMA_VERSION, SchemaError,
                       validate_chrome_trace, validate_experiment_doc,
                       validate_phase_breakdown)


def good_doc():
    return {"experiment": "fig9",
            "schema_version": EXPERIMENT_SCHEMA_VERSION,
            "points": [{"technique": "CR", "n_lost": 1,
                        "phases": {"recovery": 1.5, "combine": 0.25}}]}


def test_phase_breakdown_accepts_known_phases():
    validate_phase_breakdown({"shrink": 0.0, "spawn": 1.25})


@pytest.mark.parametrize("bad,msg", [
    ({"warp": 1.0}, "unknown phase"),
    ({"shrink": -0.1}, "negative"),
    ({"shrink": "fast"}, "number"),
    ({"shrink": True}, "number"),
    ([("shrink", 1.0)], "object"),
])
def test_phase_breakdown_rejects(bad, msg):
    with pytest.raises(SchemaError, match=msg):
        validate_phase_breakdown(bad)


def test_experiment_doc_valid():
    doc = good_doc()
    assert validate_experiment_doc(doc) is doc


@pytest.mark.parametrize("mutate,msg", [
    (lambda d: d.pop("experiment"), "missing key"),
    (lambda d: d.pop("points"), "missing key"),
    (lambda d: d.update(schema_version=99), "schema_version"),
    (lambda d: d.update(points=[]), "non-empty"),
    (lambda d: d.update(points=["row"]), "expected an object"),
    (lambda d: d["points"][0].update(phases={"warp": 1.0}), "unknown phase"),
])
def test_experiment_doc_rejects(mutate, msg):
    doc = good_doc()
    mutate(doc)
    with pytest.raises(SchemaError, match=msg):
        validate_experiment_doc(doc)


def test_chrome_trace_valid():
    doc = {"traceEvents": [
        {"name": "process_name", "ph": "M", "pid": 0, "args": {}},
        {"name": "shrink", "ph": "X", "pid": 0, "tid": 1,
         "ts": 1e6, "dur": 5e5},
        {"name": "send", "ph": "i", "pid": 0, "tid": 1, "ts": 2e6},
    ]}
    assert validate_chrome_trace(doc) is doc


@pytest.mark.parametrize("doc,msg", [
    ({}, "missing traceEvents"),
    ({"traceEvents": "x"}, "must be a list"),
    ({"traceEvents": [{"ph": "X", "pid": 0}]}, "missing key 'name'"),
    ({"traceEvents": [{"name": "a", "ph": "Z", "pid": 0}]}, "unknown phase"),
    ({"traceEvents": [{"name": "a", "ph": "X", "pid": 0, "ts": 0.0}]},
     "dur"),
    ({"traceEvents": [{"name": "a", "ph": "i", "pid": 0, "ts": 0.0}]},
     "no complete"),
])
def test_chrome_trace_rejects(doc, msg):
    with pytest.raises(SchemaError, match=msg):
        validate_chrome_trace(doc)
