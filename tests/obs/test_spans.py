"""Span recorder: phase timing, aggregation, trace emission."""

import pytest

from repro.obs import PHASES, Observability, Span, SpanRecorder


class FakeClock:
    """Deterministic (time, seq) stamp source."""

    def __init__(self):
        self.now = 0.0
        self.seq = 0

    def stamp(self):
        self.seq += 1
        return (self.now, self.seq)

    def advance(self, dt):
        self.now += dt


def test_span_records_duration_and_labels():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with rec.span("job0.0", "shrink", technique="CR", gid=3):
        clk.advance(1.5)
    (s,) = rec.spans
    assert s.phase == "shrink"
    assert s.duration == pytest.approx(1.5)
    assert s.labels == {"technique": "CR", "gid": "3"}


def test_span_closes_on_exception():
    """An aborted phase (another failure mid-repair) still consumed time."""
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with pytest.raises(RuntimeError):
        with rec.span("job0.0", "spawn"):
            clk.advance(2.0)
            raise RuntimeError("failure during repair")
    (s,) = rec.spans
    assert s.phase == "spawn" and s.duration == pytest.approx(2.0)


def test_nested_spans_both_recorded():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with rec.span("r0", "detect"):
        clk.advance(0.5)
        with rec.span("r0", "shrink"):
            clk.advance(1.0)
        clk.advance(0.25)
    by_phase = {s.phase: s.duration for s in rec.spans}
    assert by_phase["shrink"] == pytest.approx(1.0)
    assert by_phase["detect"] == pytest.approx(1.75)


def test_phase_totals_max_vs_sum():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with rec.span("r0", "merge"):
        clk.advance(1.0)
    clk.now = 0.0
    with rec.span("r1", "merge"):
        clk.advance(3.0)
    assert rec.phase_totals()["merge"] == pytest.approx(3.0)     # max
    assert rec.phase_totals("sum")["merge"] == pytest.approx(4.0)
    with pytest.raises(ValueError):
        rec.phase_totals("median")


def test_by_actor_and_by_label():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with rec.span("r0", "recovery", gid=2):
        clk.advance(1.0)
    with rec.span("r0", "recovery", gid=2):
        clk.advance(0.5)
    with rec.span("r1", "combine"):
        clk.advance(2.0)
    assert rec.by_actor()["r0"]["recovery"] == pytest.approx(1.5)
    per_grid = rec.by_label("gid")
    assert per_grid["2"]["recovery"] == pytest.approx(1.5)
    assert "combine" not in per_grid.get("2", {})  # span had no gid label


def test_spans_observed_into_registry_histogram():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp)
    with rec.span("r0", "shrink", technique="RC"):
        clk.advance(0.75)
    (h,) = rec.registry.histograms("phase_seconds")
    assert h.count == 1 and h.sum == pytest.approx(0.75)
    assert dict(h.labels) == {"phase": "shrink", "technique": "RC"}


def test_spans_emitted_to_trace_sink():
    clk = FakeClock()
    sunk = []
    rec = SpanRecorder(clk.stamp,
                       trace_sink=lambda a, k, d: sunk.append((a, k, d)))
    clk.advance(2.0)
    with rec.span("job0.3", "reconstruct", attempt=0):
        clk.advance(4.0)
    (actor, kind, detail) = sunk[0]
    assert actor == "job0.3" and kind == "span"
    assert detail.startswith("reconstruct start=2.0")
    assert "dur=4.0" in detail and "attempt=0" in detail


def test_max_spans_bound():
    clk = FakeClock()
    rec = SpanRecorder(clk.stamp, max_spans=2)
    for _ in range(5):
        with rec.span("r0", "solve"):
            clk.advance(0.1)
    assert len(rec) == 2
    assert rec.dropped == 3


def test_span_dict_round_trip():
    s = Span("r0", "agree", 1.0, 2.5, 7, {"technique": "AC"})
    assert Span.from_dict(s.to_dict()) == s


def test_observability_bundle():
    clk = FakeClock()
    obs = Observability(clk.stamp)
    with obs.span("r0", "checkpoint_write", gid=0):
        clk.advance(3.52)
    assert obs.phase_totals()["checkpoint_write"] == pytest.approx(3.52)
    doc = obs.to_dict()
    assert doc["spans"][0]["phase"] == "checkpoint_write"
    assert doc["metrics"]["histograms"]


def test_phase_names_are_canonical():
    """Every phase the instrumentation emits must be in PHASES — the
    schema validator rejects unknown names."""
    for p in ("solve", "detect", "agree", "shrink", "spawn", "merge",
              "reconstruct", "checkpoint_write", "checkpoint_read",
              "recompute", "recovery", "combine"):
        assert p in PHASES
