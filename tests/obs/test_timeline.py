"""Chrome trace_event export."""

import json

import pytest

from repro.mpi.tracing import TraceEvent, Tracer
from repro.obs import Span, chrome_trace, export_timeline
from repro.obs.schema import validate_chrome_trace
from repro.obs.timeline import US_PER_SECOND, _parse_span_detail


def test_parse_span_detail():
    d = _parse_span_detail("shrink start=1.25 dur=0.5 gid=3 technique=CR")
    assert d == {"phase": "shrink", "start": 1.25, "dur": 0.5,
                 "labels": {"gid": "3", "technique": "CR"}}


def test_parse_span_detail_rejects_malformed():
    assert _parse_span_detail("") is None
    assert _parse_span_detail("shrink dur=0.5") is None          # no start
    assert _parse_span_detail("shrink start=x dur=0.5") is None  # bad float


def test_chrome_trace_span_events_become_complete_events():
    events = [
        TraceEvent(1.0, "job0.0", "span", "shrink start=1.0 dur=0.5 gid=2"),
        TraceEvent(2.0, "job0.1", "send", "128B to job0.0"),
    ]
    doc = chrome_trace(events)
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    (x,) = xs
    assert x["name"] == "shrink"
    assert x["ts"] == pytest.approx(1.0 * US_PER_SECOND)
    assert x["dur"] == pytest.approx(0.5 * US_PER_SECOND)
    assert x["args"] == {"gid": "2"}
    (i,) = instants
    assert i["name"] == "send" and i["args"]["detail"] == "128B to job0.0"


def test_chrome_trace_assigns_one_tid_per_actor():
    events = [TraceEvent(0.0, f"job0.{r}", "barrier", "") for r in range(3)]
    doc = chrome_trace(events)
    instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert sorted(e["tid"] for e in instants) == [0, 1, 2]
    names = {e["tid"]: e["args"]["name"] for e in doc["traceEvents"]
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert names == {0: "job0.0", 1: "job0.1", 2: "job0.2"}


def test_chrome_trace_accepts_live_spans():
    doc = chrome_trace(spans=[Span("r0", "merge", 0.0, 2.0)])
    validate_chrome_trace(doc)
    (x,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert x["name"] == "merge" and x["dur"] == pytest.approx(2e6)


def test_malformed_span_falls_back_to_instant():
    events = [TraceEvent(1.0, "r0", "span", "garbage-without-fields")]
    doc = chrome_trace(events)
    (ev,) = [e for e in doc["traceEvents"] if e["ph"] == "i"]
    assert ev["name"] == "span"


def test_export_timeline_round_trip(tmp_path):
    tracer = Tracer()
    tracer.record(0.5, "job0.0", "span", "solve start=0.0 dur=0.5 gid=0")
    tracer.record(0.6, "job0.0", "kill", "fail-stop on host0")
    trace_path = tmp_path / "trace.jsonl"
    out_path = tmp_path / "timeline.json"
    tracer.save(str(trace_path))
    doc = export_timeline(str(trace_path), str(out_path))
    validate_chrome_trace(doc)
    on_disk = json.loads(out_path.read_text())
    assert on_disk == doc
    assert any(e["ph"] == "X" and e["name"] == "solve"
               for e in on_disk["traceEvents"])
