"""Advection problem definition."""

import numpy as np
import pytest

from repro.pde import AdvectionProblem, gaussian_hump, sinusoid


def test_exact_solution_is_translation():
    prob = AdvectionProblem(velocity=(1.0, 0.0))
    xs = np.linspace(0, 1, 17)
    u0 = prob.exact(xs, xs, 0.0)
    # after exactly one period the solution returns
    u1 = prob.exact(xs, xs, 1.0)
    assert np.allclose(u0, u1, atol=1e-12)


def test_exact_translation_half_period():
    prob = AdvectionProblem(velocity=(1.0, 0.0),
                            initial=lambda x, y: np.sin(2 * np.pi * x) + 0 * y)
    xs = np.linspace(0, 1, 9)
    u = prob.exact(xs, xs, 0.5)
    expected = np.sin(2 * np.pi * (xs - 0.5))[:, None] + 0 * xs[None, :]
    assert np.allclose(u, expected)


def test_initial_on_tensor_grid():
    prob = AdvectionProblem()
    xs = np.linspace(0, 1, 5)
    ys = np.linspace(0, 1, 9)
    u = prob.initial_on(xs, ys)
    assert u.shape == (5, 9)
    assert np.allclose(u, sinusoid(xs[:, None], ys[None, :]))


def test_sinusoid_periodic():
    xs = np.array([0.0, 1.0])
    assert np.allclose(sinusoid(xs[:, None], xs[None, :]), 0.0)


def test_gaussian_hump_positive_and_periodicish():
    xs = np.linspace(0, 1, 33)
    u = gaussian_hump(xs[:, None], xs[None, :])
    assert (u >= 0).all()
    assert u.max() > 0.9
    # periodisation: wrap edges agree
    assert np.allclose(u[0, :], u[-1, :], atol=1e-8)


def test_stable_dt_scales_with_level():
    prob = AdvectionProblem(velocity=(1.0, 0.5))
    dt8 = prob.stable_dt(8)
    dt9 = prob.stable_dt(9)
    assert dt9 == pytest.approx(dt8 / 2)
    assert dt8 == pytest.approx(0.4 / 256 / 1.5)


def test_stable_dt_zero_velocity():
    prob = AdvectionProblem(velocity=(0.0, 0.0))
    assert prob.stable_dt(4) == pytest.approx(0.4 / 16)
