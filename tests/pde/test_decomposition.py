"""Slab decomposition properties."""

import pytest
from hypothesis import given, strategies as st

from repro.pde import SlabDecomposition, choose_axis


def test_bounds_cover_domain():
    d = SlabDecomposition(10, 3, axis=0)
    assert [d.bounds(p) for p in range(3)] == [(0, 4), (4, 7), (7, 10)]
    assert d.sizes() == [4, 3, 3]


def test_even_split():
    d = SlabDecomposition(8, 4, axis=0)
    assert d.sizes() == [2, 2, 2, 2]


def test_owner_of():
    d = SlabDecomposition(10, 3, axis=0)
    for p in range(3):
        lo, hi = d.bounds(p)
        for i in range(lo, hi):
            assert d.owner_of(i) == p


def test_neighbours_periodic():
    d = SlabDecomposition(8, 4, axis=0)
    assert d.neighbours(0) == (3, 1)
    assert d.neighbours(3) == (2, 0)


def test_too_many_parts_rejected():
    with pytest.raises(ValueError):
        SlabDecomposition(3, 4, axis=0)
    with pytest.raises(ValueError):
        SlabDecomposition(4, 0, axis=0)


def test_bounds_out_of_range():
    d = SlabDecomposition(4, 2, axis=0)
    with pytest.raises(IndexError):
        d.bounds(2)


def test_choose_axis():
    assert choose_axis(5, 3) == 0
    assert choose_axis(3, 5) == 1
    assert choose_axis(4, 4) == 0


@given(st.integers(1, 200), st.integers(1, 32))
def test_partition_properties(n, p):
    if p > n:
        p = n
    d = SlabDecomposition(n, p, axis=0)
    sizes = d.sizes()
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1           # balanced
    # contiguous, ordered, non-overlapping
    cursor = 0
    for part in range(p):
        lo, hi = d.bounds(part)
        assert lo == cursor and hi > lo
        cursor = hi
    assert cursor == n
    # owner_of consistent with bounds
    for idx in {0, n // 2, n - 1}:
        owner = d.owner_of(idx)
        lo, hi = d.bounds(owner)
        assert lo <= idx < hi
