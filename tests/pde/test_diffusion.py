"""The second PDE: 2D heat equation through the same machinery."""

import numpy as np
import pytest

from repro.pde import (AdvectionProblem, DiffusionProblem,
                       DistributedAdvectionSolver, SerialAdvectionSolver, l1)
from repro.pde.verification import convergence_study, observed_orders

from ..conftest import run_ranks as run

PROB = DiffusionProblem(kappa=0.05)


def test_exact_solution_decays():
    xs = np.linspace(0, 1, 17)
    u0 = PROB.exact(xs, xs, 0.0)
    u1 = PROB.exact(xs, xs, 0.1)
    assert np.abs(u1).max() < np.abs(u0).max()
    assert np.allclose(u0, PROB.initial_on(xs, xs))


def test_stable_dt_scales_quadratically():
    assert PROB.stable_dt(5) == pytest.approx(PROB.stable_dt(4) / 4)


def test_serial_diffusion_accuracy():
    dt = PROB.stable_dt(5)
    s = SerialAdvectionSolver(PROB, 5, 5, dt)
    s.step(200)
    err = l1(s.nodal(), s.exact_nodal())
    # relative to the decayed amplitude the error is small
    amp = np.abs(s.exact_nodal()).max()
    assert err < 0.02 * max(amp, 1e-12)


def test_diffusion_convergence_second_order_in_space():
    study = convergence_study(PROB, levels=(4, 5, 6), t_end=0.02, cfl=0.2)
    errors = [e for _l, e in study]
    orders = observed_orders(errors)
    # FTCS with dt ~ h^2 converges at 2nd order in h
    assert all(o > 1.7 for o in orders), orders


def test_parallel_diffusion_matches_serial():
    async def main(ctx):
        dt = PROB.stable_dt(5)
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 5, 4, dt)
        await sol.step(10)
        return await sol.gather_full(0)

    res, _ = run(4, main)
    ref = SerialAdvectionSolver(PROB, 5, 4, PROB.stable_dt(5))
    ref.step(10)
    assert np.allclose(res[0], ref.u, atol=1e-14)


def test_parallel_diffusion_axis1_path():
    async def main(ctx):
        dt = PROB.stable_dt(5)
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 3, 5, dt)
        await sol.step(10)
        return await sol.gather_full(0)

    res, _ = run(4, main)
    ref = SerialAdvectionSolver(PROB, 3, 5, PROB.stable_dt(5))
    ref.step(10)
    assert np.allclose(res[0], ref.u, atol=1e-14)


def test_parallel_diffusion_2d_blocks():
    from repro.pde.parallel_solver2d import Distributed2DAdvectionSolver

    async def main(ctx):
        dt = PROB.stable_dt(4)
        sol = await Distributed2DAdvectionSolver.create(
            ctx, ctx.comm, PROB, 4, 4, dt)
        await sol.step(10)
        return await sol.gather_full(0)

    res, _ = run(4, main)
    ref = SerialAdvectionSolver(PROB, 4, 4, PROB.stable_dt(4))
    ref.step(10)
    assert np.allclose(res[0], ref.u, atol=1e-14)


def test_full_app_on_diffusion():
    """The entire fault-tolerant combination app runs on the heat equation:
    AC recovery of a lost grid with accuracy intact."""
    from repro.core import AppConfig, run_app
    from repro.machine.presets import IDEAL

    base_cfg = AppConfig(n=6, level=4, technique_code="AC", steps=32,
                         diag_procs=2, problem=PROB, cfl=0.2)
    base = run_app(base_cfg, IDEAL)
    assert np.isfinite(base.error_l1)
    cfg = AppConfig(n=6, level=4, technique_code="AC", steps=32,
                    diag_procs=2, problem=PROB, cfl=0.2,
                    simulated_lost_gids=(1,))
    hit = run_app(cfg, IDEAL)
    assert base.error_l1 <= hit.error_l1 < 100 * base.error_l1


def test_full_app_diffusion_real_failure():
    from repro.core import AppConfig, run_app
    from repro.ft.failure_injection import Kill
    from repro.machine.presets import OPL

    base = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                             diag_procs=2, problem=PROB, cfl=0.2), OPL)
    m = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                          diag_procs=2, problem=PROB, cfl=0.2), OPL,
                kills=[Kill(5, base.t_solve * 0.5)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
