"""Serial Lax-Wendroff stepper: convergence, invariants, nodal views."""

import numpy as np
import pytest

from repro.pde import (AdvectionProblem, SerialAdvectionSolver,
                       courant_numbers, l1, lw_step_interior,
                       lw_step_periodic, nodal_view, periodic_from_initial,
                       periodic_from_nodal)


def test_constant_field_is_fixed_point():
    u = np.full((8, 8), 3.5)
    out = lw_step_periodic(u, 0.3, 0.2)
    assert np.allclose(out, 3.5)


def test_zero_courant_is_identity():
    rng = np.random.default_rng(0)
    u = rng.random((8, 16))
    assert np.allclose(lw_step_periodic(u, 0.0, 0.0), u)


def test_mass_conservation():
    """Lax-Wendroff on a periodic domain conserves the discrete mean."""
    rng = np.random.default_rng(1)
    u = rng.random((16, 8))
    mean0 = u.mean()
    for _ in range(10):
        u = lw_step_periodic(u, 0.4, 0.3)
    assert u.mean() == pytest.approx(mean0, rel=1e-12)


def test_second_order_convergence():
    prob = AdvectionProblem(velocity=(1.0, 0.5))
    errs = []
    for lev in (4, 5, 6):
        s = SerialAdvectionSolver(prob, lev, lev, prob.stable_dt(lev))
        s.step(32)
        errs.append(l1(s.nodal(), s.exact_nodal()))
    # at least 2nd order: each refinement cuts error by >= ~4x
    assert errs[0] / errs[1] > 3.5
    assert errs[1] / errs[2] > 3.5


def test_exact_transport_one_period():
    """With cx=1 (cy=0) Lax-Wendroff is exact: one step shifts one cell."""
    prob = AdvectionProblem(velocity=(1.0, 0.0))
    n = 16
    dt = 1.0 / n  # cx = 1
    s = SerialAdvectionSolver(prob, 4, 4, dt)
    u0 = s.u.copy()
    s.step(n)  # full period
    assert np.allclose(s.u, u0, atol=1e-10)


def test_anisotropic_grid_shapes():
    prob = AdvectionProblem()
    s = SerialAdvectionSolver(prob, 3, 5, prob.stable_dt(5))
    assert s.u.shape == (8, 32)
    assert s.nodal().shape == (9, 33)


def test_nodal_view_roundtrip():
    rng = np.random.default_rng(2)
    u = rng.random((8, 4))
    nod = nodal_view(u)
    assert nod.shape == (9, 5)
    assert np.allclose(nod[-1, :-1], u[0, :])
    assert np.allclose(nod[:-1, -1], u[:, 0])
    assert nod[-1, -1] == u[0, 0]
    assert np.allclose(periodic_from_nodal(nod), u)


def test_courant_numbers():
    cx, cy = courant_numbers((2.0, -1.0), 3, 4, 0.01)
    assert cx == pytest.approx(2.0 * 0.01 * 8)
    assert cy == pytest.approx(-1.0 * 0.01 * 16)


def test_interior_stencil_matches_periodic():
    """Padded-interior update equals the roll-based periodic update."""
    rng = np.random.default_rng(3)
    u = rng.random((8, 8))
    full = lw_step_periodic(u, 0.3, 0.25)
    w = np.empty((10, 10))
    w[1:-1, 1:-1] = u
    w[0, 1:-1] = u[-1, :]
    w[-1, 1:-1] = u[0, :]
    w[:, 0] = w[:, -2]
    w[:, -1] = w[:, 1]
    inner = lw_step_interior(w, 0.3, 0.25)
    assert np.allclose(inner, full)


def test_time_property():
    prob = AdvectionProblem()
    s = SerialAdvectionSolver(prob, 4, 4, 0.01)
    s.step(7)
    assert s.time == pytest.approx(0.07)


def test_periodic_from_initial_drops_boundary():
    prob = AdvectionProblem()
    u = periodic_from_initial(prob, 3, 4)
    assert u.shape == (8, 16)
    nod = nodal_view(u)
    xs = np.arange(9) / 8
    ys = np.arange(17) / 16
    assert np.allclose(nod, prob.initial(xs[:, None], ys[None, :]))
