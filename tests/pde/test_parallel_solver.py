"""Distributed solver: equivalence with the serial stepper, state motion."""

import numpy as np
import pytest

from repro.pde import (AdvectionProblem, DistributedAdvectionSolver,
                       SerialAdvectionSolver)

from ..conftest import run_ranks as run

PROB = AdvectionProblem(velocity=(1.0, 0.5))


def serial_reference(lx, ly, steps):
    s = SerialAdvectionSolver(PROB, lx, ly, PROB.stable_dt(max(lx, ly)))
    s.step(steps)
    return s.u


@pytest.mark.parametrize("nprocs,lx,ly", [
    (1, 4, 4), (2, 4, 4), (4, 5, 3), (3, 5, 5), (4, 3, 5), (8, 5, 4),
])
def test_parallel_matches_serial(nprocs, lx, ly):
    async def main(ctx):
        dt = PROB.stable_dt(max(lx, ly))
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, lx, ly, dt)
        await sol.step(12)
        return await sol.gather_full(0)

    res, _ = run(nprocs, main)
    ref = serial_reference(lx, ly, 12)
    assert np.allclose(res[0], ref, atol=1e-13)


def test_gather_nodal_shape():
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 3,
                                         PROB.stable_dt(4))
        nod = await sol.gather_nodal(0)
        return None if nod is None else nod.shape

    res, _ = run(2, main)
    assert res[0] == (17, 9)
    assert res[1] is None


def test_scatter_full_replaces_state():
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        new = np.full((16, 16), 7.0) if ctx.comm.rank == 0 else None
        await sol.scatter_full(new, 0, step_count=99)
        full = await sol.gather_full(0)
        return (sol.step_count, None if full is None else float(full.mean()))

    res, _ = run(4, main)
    assert all(r[0] == 99 for r in res)
    assert res[0][1] == 7.0


def test_snapshot_restore_roundtrip():
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        await sol.step(5)
        snap = sol.snapshot()
        await sol.step(5)
        sol.restore(snap)
        assert sol.step_count == 5
        return await sol.gather_full(0)

    res, _ = run(2, main)
    ref = serial_reference(4, 4, 5)
    assert np.allclose(res[0], ref)


def test_restore_wrong_grid_rejected():
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        snap = sol.snapshot()
        snap["level_x"] = 5
        with pytest.raises(ValueError):
            sol.restore(snap)
        return True

    res, _ = run(1, main)
    assert res == [True]


def test_rebind_validates_shape():
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4))
        dup = await ctx.comm.dup()
        sol.rebind(dup)  # same size/rank: fine
        smaller = await ctx.comm.split(0 if ctx.rank == 0 else 1, ctx.rank)
        if smaller.size != ctx.comm.size:
            with pytest.raises(ValueError):
                sol.rebind(smaller)
        return True

    res, _ = run(2, main)
    assert all(res)


def test_decomposition_axis_follows_long_dimension():
    async def main(ctx):
        a = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 5, 3,
                                       PROB.stable_dt(5))
        b = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 3, 5,
                                       PROB.stable_dt(5))
        return (a.axis, b.axis, a.u.shape, b.u.shape)

    res, _ = run(4, main)
    axis_a, axis_b, shape_a, shape_b = res[0]
    assert axis_a == 0 and axis_b == 1
    assert shape_a == (8, 8)   # 32/4 x 8
    assert shape_b == (8, 8)   # 8 x 32/4


def test_step_charges_compute(opl):
    async def main(ctx):
        sol = DistributedAdvectionSolver(ctx, ctx.comm, PROB, 4, 4,
                                         PROB.stable_dt(4), compute_scale=2.0)
        await sol.step(1)
        return ctx.wtime()

    res, _ = run(1, main, machine=opl)
    from repro.pde import FLOPS_PER_POINT
    expected = FLOPS_PER_POINT * 256 * 2.0 / opl.flop_rate
    assert res[0] == pytest.approx(expected, rel=1e-6)
