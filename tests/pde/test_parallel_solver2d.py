"""2D block-decomposed solver: equivalence with serial, state motion."""

import numpy as np
import pytest

from repro.pde import AdvectionProblem, SerialAdvectionSolver
from repro.pde.parallel_solver2d import (Distributed2DAdvectionSolver,
                                         choose_dims)

from ..conftest import run_ranks as run

PROB = AdvectionProblem(velocity=(1.0, 0.5))


def serial_reference(lx, ly, steps):
    s = SerialAdvectionSolver(PROB, lx, ly, PROB.stable_dt(max(lx, ly)))
    s.step(steps)
    return s.u


@pytest.mark.parametrize("nprocs,lx,ly", [
    (1, 4, 4), (2, 4, 4), (4, 4, 4), (6, 4, 4), (4, 5, 3), (8, 4, 5),
    (9, 4, 4),
])
def test_2d_parallel_matches_serial(nprocs, lx, ly):
    async def main(ctx):
        dt = PROB.stable_dt(max(lx, ly))
        sol = await Distributed2DAdvectionSolver.create(
            ctx, ctx.comm, PROB, lx, ly, dt)
        await sol.step(12)
        return await sol.gather_full(0)

    res, _ = run(nprocs, main)
    ref = serial_reference(lx, ly, 12)
    assert np.allclose(res[0], ref, atol=1e-13)


def test_choose_dims_orients_to_grid():
    assert choose_dims(4, 5, 3) in ((2, 2),)
    px, py = choose_dims(8, 6, 3)
    assert px >= py and px * py == 8
    px, py = choose_dims(8, 3, 6)
    assert py >= px


def test_choose_dims_never_overdecomposes():
    px, py = choose_dims(8, 2, 6)   # x axis has only 4 points
    assert px <= 4 and px * py == 8


def test_2d_scatter_gather_roundtrip():
    async def main(ctx):
        dt = PROB.stable_dt(4)
        sol = await Distributed2DAdvectionSolver.create(
            ctx, ctx.comm, PROB, 4, 4, dt)
        full0 = await sol.gather_full(0)
        await sol.scatter_full(full0, 0, step_count=5)
        full1 = await sol.gather_full(0)
        if ctx.rank == 0:
            assert np.allclose(full0, full1)
        return sol.step_count

    res, _ = run(4, main)
    assert res == [5, 5, 5, 5]


def test_2d_snapshot_restore():
    async def main(ctx):
        dt = PROB.stable_dt(4)
        sol = await Distributed2DAdvectionSolver.create(
            ctx, ctx.comm, PROB, 4, 4, dt)
        await sol.step(3)
        snap = sol.snapshot()
        await sol.step(3)
        sol.restore(snap)
        return (sol.step_count, await sol.gather_full(0))

    res, _ = run(4, main)
    assert res[0][0] == 3
    assert np.allclose(res[0][1], serial_reference(4, 4, 3))


def test_2d_gather_nodal_shape():
    async def main(ctx):
        dt = PROB.stable_dt(5)
        sol = await Distributed2DAdvectionSolver.create(
            ctx, ctx.comm, PROB, 5, 3, dt)
        nod = await sol.gather_nodal(0)
        return None if nod is None else nod.shape

    res, _ = run(4, main)
    assert res[0] == (33, 9)


def test_app_2d_equals_1d_numerics(ideal):
    from repro.core import AppConfig, run_app
    m1 = run_app(AppConfig(n=6, level=4, technique_code="RC", steps=16,
                           diag_procs=4, decomposition="1d"), ideal)
    m2 = run_app(AppConfig(n=6, level=4, technique_code="RC", steps=16,
                           diag_procs=4, decomposition="2d"), ideal)
    assert m1.error_l1 == pytest.approx(m2.error_l1, abs=1e-14)


def test_app_2d_with_simulated_loss(ideal):
    from repro.core import AppConfig, run_app
    m1 = run_app(AppConfig(n=6, level=4, technique_code="AC", steps=16,
                           diag_procs=4, decomposition="1d",
                           simulated_lost_gids=(1,)), ideal)
    m2 = run_app(AppConfig(n=6, level=4, technique_code="AC", steps=16,
                           diag_procs=4, decomposition="2d",
                           simulated_lost_gids=(1,)), ideal)
    assert m1.error_l1 == pytest.approx(m2.error_l1, abs=1e-14)


def test_app_2d_real_failure_recovery(opl):
    from repro.core import AppConfig, run_app
    from repro.ft.failure_injection import Kill
    base = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                             diag_procs=4, decomposition="2d"), opl)
    m = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                          diag_procs=4, decomposition="2d"), opl,
                kills=[Kill(6, base.t_solve * 0.6)])
    assert m.error_l1 == pytest.approx(base.error_l1, rel=1e-12)
    assert m.lost_gids == [1]
