"""Verification utilities and the solver's formal convergence order."""

import pytest

from repro.pde import AdvectionProblem
from repro.pde.verification import (convergence_study, observed_orders,
                                    richardson_error_estimate)


def test_observed_orders_exact_powers():
    errors = [1.0, 0.25, 0.0625]  # exactly 2nd order at ratio 2
    orders = observed_orders(errors)
    assert orders == pytest.approx([2.0, 2.0])


def test_observed_orders_reject_nonpositive():
    with pytest.raises(ValueError):
        observed_orders([1.0, 0.0])


def test_lax_wendroff_is_second_order():
    prob = AdvectionProblem(velocity=(1.0, 0.5))
    study = convergence_study(prob, levels=(4, 5, 6), t_end=0.1)
    errors = [e for _lev, e in study]
    orders = observed_orders(errors)
    assert all(o > 1.8 for o in orders), orders


def test_convergence_study_levels_recorded():
    prob = AdvectionProblem()
    study = convergence_study(prob, levels=(3, 4), t_end=0.05)
    assert [lev for lev, _ in study] == [3, 4]
    assert study[0][1] > study[1][1]


def test_richardson_estimate():
    # f(h) = L + C h^2: coarse at h, fine at h/2
    L, C, h = 3.0, 4.0, 0.1
    coarse = L + C * h * h
    fine = L + C * (h / 2) ** 2
    est = richardson_error_estimate(coarse, fine, order=2)
    assert est == pytest.approx(abs(fine - L))
