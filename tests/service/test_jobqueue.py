"""JobQueue: coalescing, bounded backpressure, status, failure capture."""

import threading

import pytest

from repro.service.jobqueue import DONE, FAILED, JobQueue, QueueFull


@pytest.fixture
def q():
    queue = JobQueue(workers=2, max_pending=8)
    yield queue
    queue.shutdown()


def test_submit_executes_and_returns_result(q):
    job = q.submit("k1", lambda: 41 + 1)
    assert job.wait(10)
    assert job.state == DONE
    assert job.result == 42
    assert job.describe()["status"] == "done"
    assert job.describe()["seconds"] >= 0


def test_duplicate_inflight_submissions_coalesce():
    q = JobQueue(workers=1, max_pending=8)
    try:
        release = threading.Event()
        started = threading.Event()

        def blocked():
            started.set()
            release.wait(10)
            return "once"

        first = q.submit("k", blocked)
        assert started.wait(10)
        # the key is mid-execution: every further submit attaches to it
        dupes = [q.submit("k", lambda: "never") for _ in range(5)]
        assert all(d is first for d in dupes)
        assert first.waiters == 6
        release.set()
        assert first.wait(10)
        assert first.result == "once"
        stats = q.stats()
        assert stats["executed"] == 1
        assert stats["deduped"] == 5
    finally:
        q.shutdown()


def test_distinct_keys_do_not_coalesce(q):
    a = q.submit("ka", lambda: "a")
    b = q.submit("kb", lambda: "b")
    assert a is not b
    assert a.wait(10) and b.wait(10)
    assert (a.result, b.result) == ("a", "b")


def test_finished_key_resubmits_fresh_job(q):
    first = q.submit("k", lambda: 1)
    assert first.wait(10)
    second = q.submit("k", lambda: 2)
    assert second is not first
    assert second.wait(10)
    assert second.result == 2
    assert q.stats()["executed"] == 2


def test_failure_is_captured_not_raised(q):
    def boom():
        raise RuntimeError("nope")

    job = q.submit("k", boom)
    assert job.wait(10)
    assert job.state == FAILED
    assert "RuntimeError: nope" in job.error
    assert job.describe()["error"] == job.error
    assert q.stats()["failed"] == 1
    # the worker survived the failure
    ok = q.submit("k2", lambda: "alive")
    assert ok.wait(10) and ok.result == "alive"


def test_backpressure_raises_queue_full():
    q = JobQueue(workers=1, max_pending=1)
    try:
        release = threading.Event()
        started = threading.Event()

        def blocked():
            started.set()
            release.wait(10)

        q.submit("running", blocked)
        assert started.wait(10)            # worker busy
        q.submit("pending", lambda: None)  # fills the bounded queue
        with pytest.raises(QueueFull):
            q.submit("rejected", lambda: None)
        assert q.stats()["rejected"] == 1
        assert q.stats()["depth"] == 1
        release.set()
    finally:
        q.shutdown()


def test_job_lookup_by_id(q):
    job = q.submit("k", lambda: 7)
    assert q.job(job.id) is job
    assert q.job("job-999999") is None
    assert job.wait(10)


def test_inflight_lookup(q):
    release = threading.Event()
    job = q.submit("k", lambda: release.wait(10))
    assert q.inflight("k") is job
    assert q.inflight("other") is None
    release.set()
    assert job.wait(10)


def test_registry_metrics_flow(q):
    job = q.submit("k", lambda: None)
    assert job.wait(10)
    hist = q.registry.histograms("service_job_seconds")[0]
    assert hist.count == 1
    assert q.registry.counter("service_jobs", event="executed").value == 1


def test_rejects_zero_workers():
    with pytest.raises(ValueError):
        JobQueue(workers=0)
