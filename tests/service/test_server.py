"""The HTTP API: 202+poll semantics, warm hits, dedup, error paths.

Experiment endpoints are exercised against *fake* registry entries
(fast, controllable, including a failing one) — the real drivers are
covered by the CLI/experiment suites and the end-to-end smoke script.
"""

import threading

import pytest

from repro.core import RunMetrics
from repro.experiments.registry import EXPERIMENTS, ExperimentSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import create_server


def _fake_points(quick, runner):
    return [{"value": 1.5, "quick": bool(quick)}]


@pytest.fixture
def fake_experiments(monkeypatch):
    monkeypatch.setitem(
        EXPERIMENTS, "fake",
        ExperimentSpec("fake", _fake_points, lambda pts: "fake"))

    def broken(quick, runner):
        raise RuntimeError("driver exploded")

    monkeypatch.setitem(
        EXPERIMENTS, "broken",
        ExperimentSpec("broken", broken, lambda pts: "broken"))


@pytest.fixture
def service(tmp_path, fake_experiments):
    server = create_server(port=0, cache_dir=str(tmp_path / "cache"),
                           queue_workers=2, max_pending=8)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=10)
    client.wait_healthy()
    yield server, client
    server.shutdown()
    server.server_close()
    server.state.queue.shutdown()


def test_healthz(service):
    _, client = service
    doc = client.healthz()
    assert doc["status"] == "ok"
    assert doc["uptime_s"] >= 0


def test_unknown_endpoint_404(service):
    _, client = service
    status, payload = client.get("/v1/nope")
    assert status == 404
    assert "error" in payload


def test_cold_202_then_poll_to_200(service):
    _, client = service
    status, ticket = client.experiment_once("fake")
    assert status == 202
    assert ticket["status"] in ("pending", "running")
    assert ticket["job"].startswith("job-")
    assert ticket["poll"] == "/v1/experiment/fake?quick=1"
    doc = client.experiment("fake", timeout=30)
    assert doc["experiment"] == "fake"
    assert doc["points"] == [{"value": 1.5, "quick": True}]
    assert doc["params"] == {"quick": True}


def test_warm_request_immediate_200(service):
    _, client = service
    client.experiment("fake", timeout=30)
    status, doc = client.experiment_once("fake")
    assert status == 200
    assert doc["points"] == [{"value": 1.5, "quick": True}]


def test_quick_and_full_are_distinct_documents(service):
    _, client = service
    quick = client.experiment("fake", quick=True, timeout=30)
    full = client.experiment("fake", quick=False, timeout=30)
    assert quick["points"][0]["quick"] is True
    assert full["points"][0]["quick"] is False


def test_unknown_experiment_404(service):
    _, client = service
    status, payload = client.get("/v1/experiment/nope")
    assert status == 404
    assert "nope" in payload["error"]
    with pytest.raises(ServiceError):
        client.experiment("nope")


def test_concurrent_identical_requests_coalesce(service, monkeypatch):
    server, client = service
    release = threading.Event()
    started = threading.Event()

    def slow(quick, runner):
        started.set()
        release.wait(10)
        return [{"value": 2.0}]

    monkeypatch.setitem(EXPERIMENTS, "slow",
                        ExperimentSpec("slow", slow, lambda pts: "slow"))
    tickets = []

    def fire():
        tickets.append(client.experiment_once("slow"))

    fire()
    assert started.wait(10)
    threads = [threading.Thread(target=fire) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    release.set()
    assert [s for s, _ in tickets] == [202] * 5
    assert len({p["job"] for _, p in tickets}) == 1     # one shared job
    doc = client.experiment("slow", timeout=30)
    assert doc["points"] == [{"value": 2.0}]
    queue_stats = client.cache_stats()["queue"]
    assert queue_stats["deduped"] >= 4
    # the job body ran exactly once for this key
    assert queue_stats["executed"] == 1


def test_failed_experiment_answers_500_until_retry(service, monkeypatch):
    _, client = service
    status, _ = client.experiment_once("broken")
    assert status == 202
    # poll until the failure lands
    deadline = 50
    for _ in range(deadline):
        status, payload = client.experiment_once("broken")
        if status == 500:
            break
        threading.Event().wait(0.05)
    assert status == 500
    assert "driver exploded" in payload["error"]
    # a repaired driver + ?retry=1 recomputes
    monkeypatch.setitem(
        EXPERIMENTS, "broken",
        ExperimentSpec("broken", _fake_points, lambda pts: "broken"))
    status, _ = client.get("/v1/experiment/broken?retry=1")
    assert status == 202
    doc = client.experiment("broken", timeout=30)
    assert doc["points"] == [{"value": 1.5, "quick": True}]


def test_run_endpoint_serves_cached_metrics(service):
    server, client = service
    metrics = RunMetrics(technique="CR", machine="OPL", n=6, level=4,
                         steps=4, world_size=9)
    key = "ab" * 20
    server.state.cache.put(key, metrics)
    doc = client.run(key)
    assert doc["key"] == key
    assert doc["metrics"]["technique"] == "CR"
    assert doc["metrics"]["world_size"] == 9


def test_run_endpoint_miss_and_malformed(service):
    _, client = service
    status, _ = client.get("/v1/run/" + "cd" * 20)
    assert status == 404
    status, payload = client.get("/v1/run/XYZ")
    assert status == 400
    assert "malformed" in payload["error"]


def test_job_endpoint(service):
    _, client = service
    _, ticket = client.experiment_once("fake")
    job_id = ticket["job"]
    client.experiment("fake", timeout=30)
    doc = client.job(job_id)
    assert doc["job"] == job_id
    assert doc["status"] == "done"
    assert doc["label"] == "experiment:fake"
    status, _ = client.get("/v1/job/job-999999")
    assert status == 404
    status, _ = client.get("/v1/job/%20")
    assert status == 404     # does not match the job route at all


def test_queue_full_answers_503(tmp_path, fake_experiments, monkeypatch):
    server = create_server(port=0, cache_dir=str(tmp_path / "c2"),
                           queue_workers=1, max_pending=1)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(
        f"http://127.0.0.1:{server.server_address[1]}", timeout=10)
    client.wait_healthy()
    release = threading.Event()
    started = threading.Event()
    try:
        def slow(quick, runner):
            started.set()
            release.wait(10)
            return [{"v": 1}]

        for name in ("s1", "s2", "s3"):
            monkeypatch.setitem(
                EXPERIMENTS, name,
                ExperimentSpec(name, slow, lambda pts: name))
        assert client.experiment_once("s1")[0] == 202   # worker busy
        assert started.wait(10)
        assert client.experiment_once("s2")[0] == 202   # queue full now
        status, payload = client.experiment_once("s3")
        assert status == 503
        assert "capacity" in payload["error"]
        assert payload["retry_after_s"] == 1
    finally:
        release.set()
        server.shutdown()
        server.server_close()
        server.state.queue.shutdown()


def test_cache_stats_endpoint_shape(service):
    _, client = service
    client.experiment("fake", timeout=30)
    doc = client.cache_stats()
    assert doc["store"]["format_version"] == 1
    assert doc["cache"]["entries"] >= 1
    assert doc["queue"]["executed"] >= 1
    names = {c["name"] for c in doc["metrics"]["counters"]}
    assert "service_requests" in names
    assert "service_cache" in names
    hists = {h["name"] for h in doc["metrics"]["histograms"]}
    assert "service_request_seconds" in hists


def test_document_survives_restart(tmp_path, fake_experiments):
    cache_dir = str(tmp_path / "persist")

    def boot():
        server = create_server(port=0, cache_dir=cache_dir)
        t = threading.Thread(target=server.serve_forever, daemon=True)
        t.start()
        client = ServiceClient(
            f"http://127.0.0.1:{server.server_address[1]}", timeout=10)
        client.wait_healthy()
        return server, client

    server, client = boot()
    client.experiment("fake", timeout=30)
    server.shutdown()
    server.server_close()
    server.state.queue.shutdown()

    server, client = boot()
    try:
        status, doc = client.experiment_once("fake")
        assert status == 200                 # warm straight from disk
        assert doc["points"] == [{"value": 1.5, "quick": True}]
    finally:
        server.shutdown()
        server.server_close()
        server.state.queue.shutdown()
