"""SharedStore: shard layout, atomic publication, quarantine, gc."""

import os
import pickle
import threading

import pytest

from repro.service.store import STORE_FORMAT_VERSION, SharedStore


@pytest.fixture
def store(tmp_path):
    return SharedStore(tmp_path / "store")


def test_put_get_round_trip(store):
    blob = pickle.dumps({"x": 1})
    store.put("abcdef0123", blob)
    assert store.get("abcdef0123") == blob
    assert "abcdef0123" in store
    assert store.get("feedface") is None
    assert "feedface" not in store


def test_sharded_layout(store):
    store.put("abcdef", b"1")
    store.put("ab0000", b"2")
    store.put("cd0000", b"3")
    assert (store.directory / "ab" / "abcdef.pkl").is_file()
    assert (store.directory / "ab" / "ab0000.pkl").is_file()
    assert (store.directory / "cd" / "cd0000.pkl").is_file()
    assert len(store) == 3
    assert sorted(store.keys()) == ["ab0000", "abcdef", "cd0000"]


def test_meta_file_written_once(tmp_path):
    s1 = SharedStore(tmp_path)
    assert s1.format_version() == STORE_FORMAT_VERSION
    # reopening does not rewrite it
    meta = tmp_path / "STORE_META.json"
    before = meta.stat().st_mtime_ns
    SharedStore(tmp_path)
    assert meta.stat().st_mtime_ns == before


def test_invalid_keys_rejected(store):
    for bad in ("", "../etc", "a/b", "a.b"):
        with pytest.raises(ValueError):
            store.put(bad, b"x")
        with pytest.raises(ValueError):
            store.path_for(bad)


def test_overwrite_is_last_writer_wins(store):
    store.put("aa11", b"old")
    store.put("aa11", b"new")
    assert store.get("aa11") == b"new"
    assert len(store) == 1


def test_writes_leave_no_tmp_files(store):
    for i in range(20):
        store.put(f"aa{i:02d}", b"x" * 100)
    assert store.stats().tmp_files == 0


def test_concurrent_writers_same_key(store):
    blob = b"y" * 4096
    threads = [threading.Thread(target=store.put, args=("abcd", blob))
               for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert store.get("abcd") == blob
    assert store.stats().tmp_files == 0


def test_quarantine_hides_entry(store):
    store.put("abcd", b"zzz")
    moved = store.quarantine("abcd")
    assert moved is not None and moved.suffix == ".corrupt"
    assert store.get("abcd") is None
    assert "abcd" not in store
    assert store.stats().corrupt == 1
    # quarantining a missing key is a no-op
    assert store.quarantine("abcd") is None


def test_legacy_flat_entries_are_served_and_migrated(store):
    # the pre-sharding layout: <dir>/<key>.pkl
    (store.directory / "deadbeef.pkl").write_bytes(b"legacy")
    assert store.get("deadbeef") == b"legacy"
    assert "deadbeef" in store
    assert store.stats().legacy_flat == 1
    report = store.gc()
    assert report["migrated"] == 1
    assert (store.directory / "de" / "deadbeef.pkl").is_file()
    assert store.get("deadbeef") == b"legacy"
    assert store.stats().legacy_flat == 0


def test_index_metadata(store):
    store.put("abcd", b"12345")
    (idx,) = store.index()
    assert idx["key"] == "abcd"
    assert idx["size"] == 5
    assert idx["shard"] == "ab"
    assert idx["mtime"] > 0


def test_verify_reports_and_quarantines_corrupt(store):
    store.put("aa00", pickle.dumps([1, 2]))
    store.put("bb00", pickle.dumps([1, 2])[:-3])     # truncated
    report = store.verify()
    assert report["ok"] == ["aa00"] and report["corrupt"] == ["bb00"]
    assert store.stats().corrupt == 0                # report-only
    report = store.verify(quarantine=True)
    assert report["corrupt"] == ["bb00"]
    assert store.stats().corrupt == 1
    assert store.get("bb00") is None


def test_gc_sweeps_tmp_and_corrupt(store):
    store.put("aa00", b"keep")
    (store.shard_dir("aa00") / ".junk.pkl.1.2.tmp").write_bytes(b"")
    store.put("bb00", b"bad")
    store.quarantine("bb00")
    report = store.gc()
    assert report["tmp_removed"] == 1
    assert report["corrupt_removed"] == 1
    assert store.get("aa00") == b"keep"
    stats = store.stats()
    assert stats.tmp_files == 0 and stats.corrupt == 0


def test_stats_counts(store):
    for i in range(5):
        store.put(f"aa{i:02d}", b"x" * 10)
    store.put("bb00", b"x" * 10)
    s = store.stats()
    assert s.entries == 6
    assert s.bytes == 60
    assert s.shards == 2
    assert s.format_version == STORE_FORMAT_VERSION
    assert s.to_dict()["entries"] == 6


def test_delete(store):
    store.put("abcd", b"x")
    assert store.delete("abcd")
    assert store.get("abcd") is None
    assert not store.delete("abcd")


def test_atomic_write_never_exposes_partial(store):
    """A reader polling during rapid rewrites sees only complete blobs."""
    stop = False
    seen_bad = []

    def reader():
        while not stop:
            blob = store.get("abcd")
            if blob is not None and blob not in (b"A" * 2048, b"B" * 2048):
                seen_bad.append(len(blob))

    t = threading.Thread(target=reader)
    t.start()
    try:
        for i in range(200):
            store.put("abcd", (b"A" if i % 2 else b"B") * 2048)
    finally:
        stop = True
        t.join()
    assert not seen_bad


def test_vanished_file_reads_as_miss(store, monkeypatch):
    store.put("abcd", b"x")
    path = store.path_for("abcd")
    real_read_bytes = type(path).read_bytes

    def racy_read(self):
        if self.name == "abcd.pkl":
            raise FileNotFoundError(self)   # concurrent gc won the race
        return real_read_bytes(self)

    monkeypatch.setattr(type(path), "read_bytes", racy_read)
    assert store.get("abcd") is None
