"""Batched resume path: ordering identity, event pooling, future recycling."""

import pytest

from repro.simkernel import Engine, SimFuture, Sleep
from repro.simkernel.engine import _EVENT_POOL_CAP


def _wake_trace(batched: bool, n: int = 8, at: float = 3.0):
    """Resolve one future with ``n`` parked waiters and record the resume
    order, through either the batched or the per-waiter path."""
    eng = Engine(trace=True)
    fut = eng.create_future()
    order = []

    async def waiter(i):
        await fut
        order.append((i, eng.now))

    for i in range(n):
        eng.spawn(waiter(i), name=f"w{i}")

    async def completer():
        await Sleep(1.0)
        if batched:
            eng.schedule_future_batch(fut, "v", at=at)
        else:
            fut.set_result("v", at=at)

    eng.spawn(completer(), name="completer")
    eng.run()
    return order, list(eng.trace), eng.now


def test_batched_resume_order_matches_per_waiter_path():
    batched = _wake_trace(True)
    plain = _wake_trace(False)
    assert batched == plain
    order, _trace, final = batched
    assert order == [(i, 3.0) for i in range(8)]
    assert final == 3.0


def test_batched_resume_counts_logical_events():
    """One _EV_BATCH event still counts as n resumes in events_processed."""
    eng_b = Engine()
    eng_p = Engine()
    for eng, batched in ((eng_b, True), (eng_p, False)):
        fut = eng.create_future()

        async def waiter():
            await fut

        for _ in range(5):
            eng.spawn(waiter())

        async def completer(eng=eng, fut=fut, batched=batched):
            await Sleep(1.0)
            if batched:
                eng.schedule_future_batch(fut, None)
            else:
                fut.set_result(None)

        eng.spawn(completer())
        eng.run()
    assert eng_b.events_processed == eng_p.events_processed


def test_batched_single_waiter_takes_plain_resume():
    eng = Engine()
    fut = eng.create_future()
    seen = []

    async def waiter():
        seen.append(await fut)

    eng.spawn(waiter())

    async def completer():
        await Sleep(1.0)
        eng.schedule_future_batch(fut, 7, at=2.0)

    eng.spawn(completer())
    eng.run()
    assert seen == [7] and eng.now == 2.0


def test_batched_resume_skips_killed_waiter():
    """Killing a parked task discards its waiter entry, so a later batched
    resolution never steps the dead task."""
    eng = Engine()
    fut = eng.create_future()
    woke = []

    async def waiter(i):
        await fut
        woke.append(i)

    tasks = [eng.spawn(waiter(i)) for i in range(3)]

    async def killer():
        await Sleep(0.5)
        eng.kill(tasks[1])
        await Sleep(0.5)
        eng.schedule_future_batch(fut, None)

    eng.spawn(killer())
    eng.run(raise_task_failures=False)
    assert woke == [0, 2]


def test_take_waiters_resolves_and_returns_parked_tasks():
    eng = Engine()
    fut = eng.create_future()

    async def waiter():
        await fut

    t0 = eng.spawn(waiter())
    t1 = eng.spawn(waiter())
    eng.run(until=0.0)  # park both
    got = fut.take_waiters("x", at=5.0)
    assert got == [t0, t1]
    assert fut.done and fut.result() == "x" and fut.resolution_time == 5.0
    assert fut._waiters == []


def test_take_waiters_refuses_callbacks_and_done():
    eng = Engine()
    fut = eng.create_future()
    fut.add_done_callback(lambda f: None)
    with pytest.raises(RuntimeError, match="done-callbacks"):
        fut.take_waiters(None)
    fut2 = eng.create_future()
    fut2.set_result(1)
    with pytest.raises(RuntimeError, match="already resolved"):
        fut2.take_waiters(None)


def test_future_recycle_resets_to_pristine():
    eng = Engine()
    fut = eng.create_future()
    fut.set_result(41, at=2.0)
    fut.recycle()
    assert not fut.done
    fut.set_result(42, at=3.0)
    assert fut.result() == 42 and fut.resolution_time == 3.0


def test_event_pool_reuses_records_and_stays_capped():
    eng = Engine()

    async def ticker():
        for _ in range(50):
            await Sleep(0.1)

    for _ in range(4):
        eng.spawn(ticker())
    eng.run()
    # steady state: a handful of live records cycle through the pool
    assert 0 < len(eng._pool) <= _EVENT_POOL_CAP
    pooled = list(eng._pool)
    for ev in pooled:
        assert ev.a is None and ev.b is None and ev.c is None

    # a second workload on the same engine checks out the pooled records
    async def once():
        await Sleep(1.0)
        return eng.now

    t = eng.spawn(once())
    eng.run()
    assert t.result == eng.now


def test_pooled_scheduling_identical_to_fresh_engine():
    """Event ordering is unchanged by pool hits: a warmed-up engine runs a
    program with the same trace as a cold one."""
    def run(warm):
        eng = Engine()
        if warm:
            async def burn():
                for _ in range(20):
                    await Sleep(0.01)
            eng.spawn(burn())
            eng.run()
        eng.trace_enabled = True
        start = eng.now
        order = []

        async def job(i):
            await Sleep(0.5 * (i + 1))
            order.append(i)

        for i in range(6):
            eng.spawn(job(i))
        eng.run()
        return order, [(round(t - start, 9), name, what)
                       for t, name, what in eng.trace]

    # task names differ (taskN counter), compare structure via enumeration
    cold_order, cold_trace = run(False)
    warm_order, warm_trace = run(True)
    assert cold_order == warm_order
    assert [(t, what) for t, _n, what in cold_trace] == \
        [(t, what) for t, _n, what in warm_trace]
