"""Engine: virtual time, scheduling order, kills, deadlock detection."""

import pytest

from repro.simkernel import (DeadlockError, Engine, SimFuture, Sleep,
                             TaskFailedError, TaskState)
from repro.simkernel.errors import SimulationLimitError


def test_sleep_advances_virtual_time():
    eng = Engine()
    times = []

    async def main():
        times.append(eng.now)
        await Sleep(2.5)
        times.append(eng.now)
        await Sleep(0.5)
        times.append(eng.now)

    eng.spawn(main())
    final = eng.run()
    assert times == [0.0, 2.5, 3.0]
    assert final == 3.0


def test_zero_sleep_is_legal():
    eng = Engine()

    async def main():
        await Sleep(0.0)
        return eng.now

    t = eng.spawn(main())
    eng.run()
    assert t.result == 0.0


def test_negative_sleep_rejected():
    with pytest.raises(ValueError):
        Sleep(-1.0)


def test_task_result_and_state():
    eng = Engine()

    async def main():
        return 42

    task = eng.spawn(main())
    eng.run()
    assert task.state is TaskState.DONE
    assert task.result == 42


def test_many_tasks_deterministic_order():
    """Two identical runs produce identical traces."""
    def build():
        eng = Engine(trace=True)
        order = []

        async def worker(i):
            await Sleep(float(i % 3))
            order.append(i)
            await Sleep(0.1 * i)
            order.append(-i)

        for i in range(20):
            eng.spawn(worker(i), name=f"w{i}")
        eng.run()
        return order, eng.trace

    o1, t1 = build()
    o2, t2 = build()
    assert o1 == o2
    assert t1 == t2


def test_future_resolution_wakes_waiter_at_future_time():
    eng = Engine()
    fut = eng.create_future("x")
    got = []

    async def waiter():
        got.append(await fut)
        got.append(eng.now)

    async def setter():
        await Sleep(1.0)
        fut.set_result("hello", at=5.0)  # resolves "in the future"

    eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert got == ["hello", 5.0]


def test_future_exception_propagates():
    eng = Engine()
    fut = eng.create_future()

    async def waiter():
        with pytest.raises(ValueError, match="boom"):
            await fut
        return "survived"

    async def setter():
        fut.set_exception(ValueError("boom"))

    t = eng.spawn(waiter())
    eng.spawn(setter())
    eng.run()
    assert t.result == "survived"


def test_await_already_resolved_future():
    eng = Engine()
    fut = eng.create_future()
    fut.set_result(7, at=3.0)

    async def main():
        v = await fut
        return (v, eng.now)

    t = eng.spawn(main())
    eng.run()
    assert t.result == (7, 3.0)


def test_unhandled_task_exception_raises_from_run():
    eng = Engine()

    async def bad():
        raise RuntimeError("oops")

    eng.spawn(bad())
    with pytest.raises(TaskFailedError) as exc_info:
        eng.run()
    assert isinstance(exc_info.value.original, RuntimeError)


def test_run_can_suppress_task_failures():
    eng = Engine()

    async def bad():
        raise RuntimeError("oops")

    t = eng.spawn(bad())
    eng.run(raise_task_failures=False)
    assert t.state is TaskState.FAILED


def test_deadlock_detection():
    eng = Engine()
    fut = eng.create_future("never")

    async def stuck():
        await fut

    eng.spawn(stuck(), name="stuck")
    with pytest.raises(DeadlockError) as exc_info:
        eng.run()
    assert "stuck" in str(exc_info.value)


def test_kill_prevents_resume_and_runs_finally():
    eng = Engine()
    fut = eng.create_future()
    cleaned = []

    async def victim():
        try:
            await fut
        finally:
            cleaned.append(True)

    task = eng.spawn(victim(), name="victim")

    async def killer():
        await Sleep(1.0)
        eng.kill(task)

    eng.spawn(killer())
    eng.run()
    assert task.state is TaskState.KILLED
    assert cleaned == [True]
    assert not fut._waiters  # waiter was discarded


def test_kill_hooks_fire_once():
    eng = Engine()
    fired = []

    async def victim():
        await Sleep(10.0)

    task = eng.spawn(victim())
    task.add_kill_hook(lambda t: fired.append(t.name))
    eng.kill(task)
    eng.kill(task)  # idempotent
    eng.run()
    assert len(fired) == 1


def test_call_at_and_call_later():
    eng = Engine()
    seen = []

    async def main():
        await Sleep(5.0)

    eng.spawn(main())
    eng.call_at(2.0, lambda: seen.append(("at", eng.now)))
    eng.call_later(3.0, lambda: seen.append(("later", eng.now)))
    eng.run()
    assert seen == [("at", 2.0), ("later", 3.0)]


def test_join_future():
    eng = Engine()

    async def child():
        await Sleep(2.0)
        return "done"

    async def parent():
        t = eng.spawn(child())
        return await t.done_future

    p = eng.spawn(parent())
    eng.run()
    assert p.result == "done"
    assert eng.now == 2.0


def test_spawn_at_future_time():
    eng = Engine()
    started = []

    async def late():
        started.append(eng.now)

    eng.spawn(late(), at=4.0)
    eng.run()
    assert started == [4.0]


def test_event_limit():
    eng = Engine(max_events=50)

    async def spinner():
        while True:
            await Sleep(1.0)

    eng.spawn(spinner())
    with pytest.raises(SimulationLimitError):
        eng.run()


def test_awaiting_garbage_is_an_error():
    eng = Engine()

    async def bad():
        await _NotATrap()

    eng.spawn(bad())
    with pytest.raises(RuntimeError, match="unsupported"):
        eng.run()


class _NotATrap:
    def __await__(self):
        yield self


def test_run_until_pauses_clock():
    eng = Engine()
    hits = []

    async def ticker():
        for _ in range(10):
            await Sleep(1.0)
            hits.append(eng.now)

    eng.spawn(ticker())
    eng.run(until=3.5)
    assert hits == [1.0, 2.0, 3.0]
    eng.run()
    assert hits[-1] == 10.0


def test_run_until_advances_clock_to_horizon():
    """run(until=) must leave now == until even when the queue drains or
    breaks early, so deadlines scheduled afterwards via call_later are
    relative to the requested horizon (regression test)."""
    eng = Engine()

    async def once():
        await Sleep(1.0)

    eng.spawn(once())
    assert eng.run(until=5.0) == 5.0
    assert eng.now == 5.0

    fired = []
    eng.call_later(1.0, lambda: fired.append(eng.now))
    eng.run(until=10.0)
    assert fired == [6.0]
    assert eng.now == 10.0

    # an engine with no events at all still advances to the horizon
    eng2 = Engine()
    assert eng2.run(until=2.5) == 2.5
    assert eng2.now == 2.5
