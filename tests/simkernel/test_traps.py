"""SimFuture semantics."""

import pytest

from repro.simkernel import Engine, SimFuture, Sleep


def test_future_basics():
    eng = Engine()
    fut = eng.create_future("f")
    assert not fut.done
    with pytest.raises(RuntimeError):
        fut.result()
    fut.set_result(5)
    assert fut.done
    assert fut.result() == 5
    assert fut.exception() is None
    assert fut.resolution_time == 0.0


def test_double_resolution_rejected():
    eng = Engine()
    fut = eng.create_future()
    fut.set_result(1)
    with pytest.raises(RuntimeError, match="already resolved"):
        fut.set_result(2)
    with pytest.raises(RuntimeError, match="already resolved"):
        fut.set_exception(ValueError())


def test_resolution_time_clamped_to_now():
    eng = Engine()

    async def main():
        await Sleep(10.0)
        fut = eng.create_future()
        fut.set_result(None, at=1.0)  # in the past -> clamped
        assert fut.resolution_time == 10.0

    eng.spawn(main())
    eng.run()


def test_done_callback_immediate_and_deferred():
    eng = Engine()
    seen = []
    fut = eng.create_future()
    fut.add_done_callback(lambda f: seen.append("deferred"))
    fut.set_result(None)
    fut.add_done_callback(lambda f: seen.append("immediate"))
    assert seen == ["deferred", "immediate"]


def test_exception_accessor():
    eng = Engine()
    fut = eng.create_future()
    err = ValueError("x")
    fut.set_exception(err)
    assert fut.exception() is err
    with pytest.raises(ValueError):
        fut.result()


def test_multiple_waiters_all_wake():
    eng = Engine()
    fut = eng.create_future()
    woke = []

    async def waiter(i):
        await fut
        woke.append(i)

    for i in range(5):
        eng.spawn(waiter(i))

    async def setter():
        await Sleep(1.0)
        fut.set_result(None)

    eng.spawn(setter())
    eng.run()
    assert sorted(woke) == [0, 1, 2, 3, 4]


def test_discard_waiter_noop_when_absent():
    eng = Engine()
    fut = eng.create_future()

    class FakeTask:
        pass

    fut.discard_waiter(FakeTask())  # must not raise
