"""Combination coefficients: classic bands, downsets, Möbius properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsegrid import (classic_coefficients, coefficient_support_ok,
                              combination_interpolant, dominates, downset,
                              downset_coefficients, is_downset,
                              maximal_elements, meet, truncated_coefficients,
                              axis_points)

index_sets = st.sets(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=8)


def test_dominates_and_meet():
    assert dominates((3, 4), (3, 4))
    assert dominates((4, 4), (3, 2))
    assert not dominates((4, 1), (3, 2))
    assert meet((3, 5), (4, 2)) == (3, 2)


def test_maximal_elements_sorted():
    pts = [(1, 3), (3, 1), (2, 2), (1, 1), (0, 4)]
    assert maximal_elements(pts) == [(0, 4), (1, 3), (2, 2), (3, 1)]


def test_downset_generation():
    ds = downset([(1, 2)])
    assert ds == {(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)}
    assert is_downset(ds)
    assert not is_downset({(1, 1)})


def test_downset_coefficients_single_index():
    coeffs = downset_coefficients([(2, 3)])
    assert coeffs == {(2, 3): 1.0}


def test_downset_coefficients_classic_cross():
    """Two crossing maxima: +1 each, -1 at their meet."""
    coeffs = downset_coefficients([(2, 0), (0, 2)])
    assert coeffs == {(2, 0): 1.0, (0, 2): 1.0, (0, 0): -1.0}


def test_classic_coefficients_equal_eq1():
    cc = classic_coefficients(8, 4)
    diag = {(i, 13 - i) for i in range(5, 9)}
    lower = {(i, 12 - i) for i in range(5, 8)}
    assert {k for k, v in cc.items() if v == 1.0} == diag
    assert {k for k, v in cc.items() if v == -1.0} == lower
    assert set(cc) == diag | lower


@pytest.mark.parametrize("n,l", [(4, 4), (6, 4), (8, 4), (9, 5), (10, 6)])
def test_classic_coefficients_sum_to_one(n, l):
    assert sum(classic_coefficients(n, l).values()) == pytest.approx(1.0)


def test_truncated_rejects_below_floor():
    with pytest.raises(ValueError):
        truncated_coefficients([(1, 1)], floor=(2, 2))


def test_coefficient_support_ok():
    coeffs = {(1, 1): 1.0, (0, 0): 0.0}
    assert coefficient_support_ok(coeffs, [(1, 1)])
    assert not coefficient_support_ok({(1, 1): 1.0}, [(0, 0)])


@given(index_sets)
@settings(max_examples=60)
def test_mobius_coefficients_sum_to_one(idx):
    coeffs = downset_coefficients(idx)
    assert sum(coeffs.values()) == pytest.approx(1.0)


@given(index_sets)
@settings(max_examples=60)
def test_mobius_support_is_maxima_and_meets(idx):
    coeffs = downset_coefficients(idx)
    maxima = maximal_elements(idx)
    allowed = set(maxima)
    for a, b in zip(maxima, maxima[1:]):
        allowed.add(meet(a, b))
    assert set(coeffs) <= allowed
    for m in maxima:
        assert coeffs[m] == 1.0


@given(index_sets)
@settings(max_examples=30, deadline=None)
def test_combination_reproduces_bilinear_functions(idx):
    """For f in the span of bilinear hat functions on every grid (here a
    global bilinear polynomial), the combination interpolant is exact."""
    coeffs = downset_coefficients(idx)

    def f(x, y):
        return 1.5 - 2.0 * x + 0.75 * y + 3.0 * x * y

    target = (6, 6)
    result = combination_interpolant(f, coeffs, target)
    xs = axis_points(6)
    exact = f(xs[:, None], xs[None, :])
    assert np.allclose(result, exact, atol=1e-12)


def test_combination_exact_for_union_space_function():
    """A function that is piecewise-bilinear on every participating grid
    (kink at x=0.5, a node of all levels >= 1) is reproduced exactly."""
    coeffs = downset_coefficients([(3, 1), (1, 3)])

    def f(x, y):
        return np.abs(x - 0.5) * (1.0 + 2.0 * y)

    target = (4, 4)
    result = combination_interpolant(f, coeffs, target)
    xs = axis_points(4)
    assert np.allclose(result, f(xs[:, None], xs[None, :]), atol=1e-12)
