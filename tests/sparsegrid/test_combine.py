"""Serial and parallel combination."""

import numpy as np
import pytest

from repro.pde import AdvectionProblem, SerialAdvectionSolver, l1
from repro.sparsegrid import (CombinationScheme, axis_points, combine_nodal,
                              combine_on_root, nodal_of, scatter_samples)

from ..conftest import run_ranks as run


def classic_parts_and_coeffs(n=6, level=4, steps=8):
    prob = AdvectionProblem()
    scheme = CombinationScheme(n, level)
    dt = prob.stable_dt(n)
    parts, coeffs = {}, {}
    for g in scheme.grids:
        s = SerialAdvectionSolver(prob, g.level_x, g.level_y, dt)
        s.step(steps)
        parts[g.index] = s.nodal()
        coeffs[g.index] = g.coeff
    return prob, parts, coeffs, steps * dt


def test_combination_beats_coarsest_grid():
    prob, parts, coeffs, t = classic_parts_and_coeffs()
    target = (6, 6)
    combined = combine_nodal(parts, coeffs, target)
    xs = axis_points(6)
    exact = prob.exact(xs, xs, t)
    err_comb = l1(combined, exact)
    # each individual anisotropic grid is worse than the combination
    worst = max(l1(np.asarray(
        __import__("repro.sparsegrid", fromlist=["resample"]).resample(
            parts[ix], ix, target)), exact) for ix in parts)
    assert err_comb < worst


def test_missing_grid_raises():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    missing = next(iter(parts))
    del parts[missing]
    with pytest.raises(KeyError):
        combine_nodal(parts, coeffs, (6, 6))


def test_zero_coefficient_grid_not_needed():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    some = next(iter(parts))
    coeffs[some] = 0.0
    del parts[some]
    combine_nodal(parts, coeffs, (6, 6))  # must not raise


def test_all_zero_coefficients_rejected():
    with pytest.raises(ValueError):
        combine_nodal({}, {(1, 1): 0.0}, (2, 2))


def test_combination_of_interpolants_exact_for_constant():
    coeffs = {(2, 4): 1.0, (4, 2): 1.0, (2, 2): -1.0}
    parts = {ix: np.full(((1 << ix[0]) + 1, (1 << ix[1]) + 1), 2.5)
             for ix in coeffs}
    out = combine_nodal(parts, coeffs, (5, 5))
    assert np.allclose(out, 2.5)


def test_parallel_combine_matches_serial():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    serial = combine_nodal(parts, coeffs, (6, 6))
    indices = sorted(parts)

    async def main(ctx):
        mine = {}
        if ctx.rank < len(indices):
            ix = indices[ctx.rank]
            mine[ix] = parts[ix]
        return await combine_on_root(ctx.comm, mine, coeffs, (6, 6), root=0)

    res, _ = run(len(indices) + 2, main)
    assert np.allclose(res[0], serial)
    assert all(r is None for r in res[1:])


def test_parallel_combine_duplicate_contributions_first_wins():
    coeffs = {(2, 2): 1.0}
    a = np.zeros((5, 5))
    b = np.ones((5, 5))

    async def main(ctx):
        mine = {(2, 2): a} if ctx.rank == 0 else {(2, 2): b}
        return await combine_on_root(ctx.comm, mine, coeffs, (2, 2), root=0)

    res, _ = run(2, main)
    assert np.allclose(res[0], 0.0)


def test_scatter_samples_delivers_requested_grids():
    combined = nodal_of(lambda x, y: x + 2 * y, (4, 4))

    async def main(ctx):
        wanted = {1: (2, 2), 2: (3, 2)}
        sample = await scatter_samples(
            ctx.comm, combined if ctx.rank == 0 else None, (4, 4), wanted,
            root=0)
        return None if sample is None else sample.shape

    res, _ = run(3, main)
    assert res[0] is None
    assert res[1] == (5, 5)
    assert res[2] == (9, 5)


# ----------------------------------------------------------------------
# the precomputed combination plan
# ----------------------------------------------------------------------

def test_plan_bit_identical_to_reference():
    """The cached plan must reproduce the plan-free loop to the last bit
    — the sweep engine's determinism guarantee rests on this."""
    from repro.sparsegrid import combine_nodal_reference
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    for target in ((6, 6), (5, 5), (7, 6)):
        ref = combine_nodal_reference(parts, coeffs, target)
        out = combine_nodal(parts, coeffs, target)
        assert out.dtype == ref.dtype
        assert np.array_equal(out, ref)  # exact, not allclose


def test_plan_bit_identical_with_alternate_coefficients():
    """AC-style coefficient sets (zeros, negatives, reweighted grids)
    exercise the zero-skip and ordering paths."""
    from repro.sparsegrid import (CombinationScheme,
                                  alternate_coefficients_for,
                                  combine_nodal_reference, nodal_of)
    scheme = CombinationScheme(6, 4, extra_layers=2)
    coeffs = alternate_coefficients_for(scheme, {1, 4})
    parts = {ix: nodal_of(lambda x, y: np.sin(x + 2 * y), ix)
             for ix in coeffs}
    ref = combine_nodal_reference(parts, coeffs, (6, 6))
    out = combine_nodal(parts, coeffs, (6, 6))
    assert np.array_equal(out, ref)


def test_plan_is_cached_and_buffers_not_aliased():
    from repro.sparsegrid import combination_plan
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    sources = [ix for ix, c in coeffs.items() if c != 0.0]
    p1 = combination_plan(sources, (6, 6))
    p2 = combination_plan(list(reversed(sources)), (6, 6))
    assert p1 is p2  # order-insensitive cache key
    a = combine_nodal(parts, coeffs, (6, 6))
    b = combine_nodal(parts, coeffs, (6, 6))
    assert a is not b  # owned result, not the plan's accumulator
    assert np.array_equal(a, b)


def test_plan_error_parity_with_reference():
    from repro.sparsegrid import combine_nodal_reference
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    missing = next(iter(parts))
    bad = dict(parts)
    del bad[missing]
    for fn in (combine_nodal, combine_nodal_reference):
        with pytest.raises(KeyError):
            fn(bad, coeffs, (6, 6))
        with pytest.raises(ValueError):
            fn({}, {(1, 1): 0.0}, (2, 2))


def test_plan_handles_coefficient_outside_planned_sources():
    """combine() with a coefficient set wider than the plan's sources
    falls back to an on-the-fly operator for the extra index."""
    from repro.sparsegrid import combination_plan, nodal_of
    plan = combination_plan([(3, 3)], (4, 4))
    parts = {ix: nodal_of(lambda x, y: x * y, ix)
             for ix in ((3, 3), (2, 2))}
    out = plan.combine(parts, {(3, 3): 1.0, (2, 2): -1.0})
    from repro.sparsegrid import combine_nodal_reference
    ref = combine_nodal_reference(parts, {(3, 3): 1.0, (2, 2): -1.0}, (4, 4))
    assert np.array_equal(out, ref)
