"""Serial and parallel combination."""

import numpy as np
import pytest

from repro.pde import AdvectionProblem, SerialAdvectionSolver, l1
from repro.sparsegrid import (CombinationScheme, axis_points, combine_nodal,
                              combine_on_root, nodal_of, scatter_samples)

from ..conftest import run_ranks as run


def classic_parts_and_coeffs(n=6, level=4, steps=8):
    prob = AdvectionProblem()
    scheme = CombinationScheme(n, level)
    dt = prob.stable_dt(n)
    parts, coeffs = {}, {}
    for g in scheme.grids:
        s = SerialAdvectionSolver(prob, g.level_x, g.level_y, dt)
        s.step(steps)
        parts[g.index] = s.nodal()
        coeffs[g.index] = g.coeff
    return prob, parts, coeffs, steps * dt


def test_combination_beats_coarsest_grid():
    prob, parts, coeffs, t = classic_parts_and_coeffs()
    target = (6, 6)
    combined = combine_nodal(parts, coeffs, target)
    xs = axis_points(6)
    exact = prob.exact(xs, xs, t)
    err_comb = l1(combined, exact)
    # each individual anisotropic grid is worse than the combination
    worst = max(l1(np.asarray(
        __import__("repro.sparsegrid", fromlist=["resample"]).resample(
            parts[ix], ix, target)), exact) for ix in parts)
    assert err_comb < worst


def test_missing_grid_raises():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    missing = next(iter(parts))
    del parts[missing]
    with pytest.raises(KeyError):
        combine_nodal(parts, coeffs, (6, 6))


def test_zero_coefficient_grid_not_needed():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    some = next(iter(parts))
    coeffs[some] = 0.0
    del parts[some]
    combine_nodal(parts, coeffs, (6, 6))  # must not raise


def test_all_zero_coefficients_rejected():
    with pytest.raises(ValueError):
        combine_nodal({}, {(1, 1): 0.0}, (2, 2))


def test_combination_of_interpolants_exact_for_constant():
    coeffs = {(2, 4): 1.0, (4, 2): 1.0, (2, 2): -1.0}
    parts = {ix: np.full(((1 << ix[0]) + 1, (1 << ix[1]) + 1), 2.5)
             for ix in coeffs}
    out = combine_nodal(parts, coeffs, (5, 5))
    assert np.allclose(out, 2.5)


def test_parallel_combine_matches_serial():
    prob, parts, coeffs, _ = classic_parts_and_coeffs()
    serial = combine_nodal(parts, coeffs, (6, 6))
    indices = sorted(parts)

    async def main(ctx):
        mine = {}
        if ctx.rank < len(indices):
            ix = indices[ctx.rank]
            mine[ix] = parts[ix]
        return await combine_on_root(ctx.comm, mine, coeffs, (6, 6), root=0)

    res, _ = run(len(indices) + 2, main)
    assert np.allclose(res[0], serial)
    assert all(r is None for r in res[1:])


def test_parallel_combine_duplicate_contributions_first_wins():
    coeffs = {(2, 2): 1.0}
    a = np.zeros((5, 5))
    b = np.ones((5, 5))

    async def main(ctx):
        mine = {(2, 2): a} if ctx.rank == 0 else {(2, 2): b}
        return await combine_on_root(ctx.comm, mine, coeffs, (2, 2), root=0)

    res, _ = run(2, main)
    assert np.allclose(res[0], 0.0)


def test_scatter_samples_delivers_requested_grids():
    combined = nodal_of(lambda x, y: x + 2 * y, (4, 4))

    async def main(ctx):
        wanted = {1: (2, 2), 2: (3, 2)}
        sample = await scatter_samples(
            ctx.comm, combined if ctx.rank == 0 else None, (4, 4), wanted,
            root=0)
        return None if sample is None else sample.shape

    res, _ = run(3, main)
    assert res[0] is None
    assert res[1] == (5, 5)
    assert res[2] == (9, 5)
