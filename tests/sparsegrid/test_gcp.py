"""Alternate-combination coefficient computation after grid loss."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsegrid import (CombinationScheme, RecoveryInfeasibleError,
                              alternate_coefficients,
                              alternate_coefficients_for, scheme_floor,
                              survivors)


def ac_scheme(n=8):
    return CombinationScheme(n, 4, extra_layers=2)


def test_no_loss_reproduces_classic_support():
    s = ac_scheme()
    coeffs = alternate_coefficients_for(s, [])
    diag = {g.index for g in s.diagonal}
    lower = {g.index for g in s.lower}
    assert {k for k, v in coeffs.items() if v == 1.0} == diag
    assert {k for k, v in coeffs.items() if v == -1.0} == lower


@pytest.mark.parametrize("lost", [[0], [1], [2], [3], [4], [5], [6]])
def test_single_loss_supported_by_survivors(lost):
    s = ac_scheme()
    coeffs = alternate_coefficients_for(s, lost)
    surv = set(survivors(s, lost))
    assert sum(coeffs.values()) == pytest.approx(1.0)
    assert all(ix in surv for ix in coeffs)
    # the lost grid's index must not carry a coefficient
    lost_ix = s[lost[0]].index
    assert lost_ix not in coeffs


def test_adjacent_diagonal_pair_uses_extra_layer():
    s = ac_scheme()
    coeffs = alternate_coefficients_for(s, [1, 2])
    layer2 = {g.index for g in s.extra if g.layer == 2}
    assert any(ix in coeffs for ix in layer2)
    assert sum(coeffs.values()) == pytest.approx(1.0)


def test_three_adjacent_diagonals_greedy_fallback():
    s = ac_scheme()
    coeffs = alternate_coefficients_for(s, [0, 1, 2])
    surv = set(survivors(s, [0, 1, 2]))
    assert all(ix in surv for ix in coeffs)
    assert sum(coeffs.values()) == pytest.approx(1.0)


def test_lost_extra_layer_grid_is_harmless():
    s = ac_scheme()
    extras = [g.gid for g in s.extra]
    coeffs = alternate_coefficients_for(s, extras[:1])
    classic = alternate_coefficients_for(s, [])
    assert coeffs == classic


def test_scheme_floor():
    s = ac_scheme(8)
    assert scheme_floor(s) == (5, 5)


def test_survivors_collapse_duplicates():
    s = CombinationScheme(8, 4, duplicates=True)
    # lose the primary diagonal 0; its duplicate keeps the index alive
    surv = survivors(s, [0])
    assert s[0].index in surv


def test_no_survivors_is_infeasible():
    with pytest.raises(RecoveryInfeasibleError):
        alternate_coefficients([], (0, 0))


@settings(max_examples=50, deadline=None)
@given(st.sets(st.integers(0, 9), max_size=5))
def test_any_loss_pattern_yields_valid_coefficients(lost):
    """Up to 5 of the 10 AC grids lost: coefficients always exist, sum to 1
    and are supported on survivors (the paper tests exactly this range)."""
    s = ac_scheme()
    if len(lost) >= len(s.diagonal) + len(s.lower) + len(s.extra):
        return
    coeffs = alternate_coefficients_for(s, lost)
    surv = set(survivors(s, lost))
    assert sum(coeffs.values()) == pytest.approx(1.0)
    assert all(ix in surv for ix in coeffs if coeffs[ix])
