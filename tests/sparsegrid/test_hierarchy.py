"""Hierarchical structure: the classical sparse-grid identities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsegrid import downset_coefficients, nodal_of
from repro.sparsegrid.hierarchy import (combination_at_points,
                                        full_grid_point_count,
                                        grid_points_1d,
                                        hierarchical_surplus_1d,
                                        interpolate_bilinear, union_points)

index_sets = st.sets(
    st.tuples(st.integers(0, 4), st.integers(0, 4)), min_size=1, max_size=5)


def f_smooth(x, y):
    return np.sin(2 * np.pi * x) * np.cos(np.pi * y) + x * y


def test_union_points_counts():
    assert len(union_points([(1, 1)])) == 9
    # (2,0) is 5x2 points, (0,2) is 2x5; they share the 4 corners
    pts = union_points([(2, 0), (0, 2)])
    assert len(pts) == 10 + 10 - 4
    assert full_grid_point_count(2) == 25


def test_union_sparse_vs_full_growth():
    """The sparse union is far smaller than the full grid."""
    diag = [(i, 6 - i) for i in range(7)]
    assert len(union_points(diag)) < full_grid_point_count(6) / 4


def test_hierarchical_surplus_linear_vanishes():
    """Surpluses of a linear function vanish above level 0."""
    xs = grid_points_1d(4)
    values = 3.0 * xs + 1.0
    s = hierarchical_surplus_1d(values)
    assert np.allclose(s[1:-1], 0.0)
    assert s[0] == values[0] and s[-1] == values[-1]


def test_hierarchical_surplus_hat_function():
    """The level-1 hat at x=0.5: surplus 1 there, 0 at finer nodes."""
    xs = grid_points_1d(3)
    values = np.maximum(0.0, 1.0 - 2.0 * np.abs(xs - 0.5))
    s = hierarchical_surplus_1d(values)
    mid = len(xs) // 2
    assert s[mid] == pytest.approx(1.0)
    fine = [i for i in range(1, len(xs) - 1) if i != mid and i % 2 == 1]
    assert np.allclose(s[fine], 0.0)


def test_surplus_rejects_bad_length():
    with pytest.raises(ValueError):
        hierarchical_surplus_1d(np.zeros(6))
    with pytest.raises(ValueError):
        hierarchical_surplus_1d(np.zeros(1))


def test_interpolate_bilinear_reference():
    xs = grid_points_1d(1)
    ys = grid_points_1d(1)
    vals = np.array([[0.0, 1.0, 2.0], [1.0, 2.0, 3.0], [2.0, 3.0, 4.0]])
    # f(x, y) = 2x + 2y on these nodes
    assert interpolate_bilinear(xs, ys, vals, 0.25, 0.25) == pytest.approx(1.0)
    assert interpolate_bilinear(xs, ys, vals, 1.0, 1.0) == pytest.approx(4.0)
    assert interpolate_bilinear(xs, ys, vals, 0.0, 0.75) == pytest.approx(1.5)


@given(index_sets)
@settings(max_examples=25, deadline=None)
def test_combination_exact_on_every_union_point(idx):
    """THE classical identity: with downset (Möbius) coefficients, the
    combination of grid interpolants reproduces the function exactly at
    every point of the union sparse grid."""
    coeffs = downset_coefficients(idx)
    ds = set(coeffs)
    parts = {ix: nodal_of(f_smooth, ix) for ix in ds}
    pts = union_points(ds)
    values = combination_at_points(parts, coeffs, pts)
    expected = np.array([f_smooth(np.array(x), np.array(y))
                         for x, y in pts])
    assert np.allclose(values, expected, atol=1e-10)
