"""Combination scheme structure (Fig. 1)."""

import pytest

from repro.sparsegrid import (ROLE_DIAGONAL, ROLE_DUPLICATE, ROLE_EXTRA,
                              ROLE_LOWER, CombinationScheme, layer_indices)


def test_layer_indices_paper_n13_l4():
    assert layer_indices(13, 4, 0) == [(10, 13), (11, 12), (12, 11), (13, 10)]
    assert layer_indices(13, 4, 1) == [(10, 12), (11, 11), (12, 10)]
    assert layer_indices(13, 4, 2) == [(10, 11), (11, 10)]
    assert layer_indices(13, 4, 3) == [(10, 10)]
    assert layer_indices(13, 4, 4) == []


def test_cr_scheme_has_seven_grids():
    s = CombinationScheme(13, 4)
    assert len(s) == 7
    assert len(s.diagonal) == 4
    assert len(s.lower) == 3
    assert not s.duplicates_list and not s.extra
    assert [g.gid for g in s.grids] == list(range(7))


def test_rc_scheme_matches_fig1_ids():
    """Fig. 1: IDs 0-6 primary, 7-10 duplicates of 0-3."""
    s = CombinationScheme(13, 4, duplicates=True)
    assert len(s) == 11
    for d in range(4):
        dup = s[7 + d]
        assert dup.role == ROLE_DUPLICATE
        assert dup.index == s[d].index
        assert dup.partner == d
        assert s[d].partner == 7 + d


def test_ac_scheme_matches_fig1_ids():
    """Fig. 1: IDs 11-13 are the two extra layers (here 7-9 without dups)."""
    s = CombinationScheme(13, 4, extra_layers=2)
    assert len(s) == 10
    extras = s.extra
    assert [g.index for g in extras] == [(10, 11), (11, 10), (10, 10)]
    assert [g.layer for g in extras] == [2, 2, 3]
    assert all(g.coeff == 0.0 for g in extras)


def test_classic_coefficients_bands():
    s = CombinationScheme(8, 4)
    coeffs = s.classic_coefficients()
    for g in s.diagonal:
        assert coeffs[g.gid] == +1.0
    for g in s.lower:
        assert coeffs[g.gid] == -1.0
    assert len(coeffs) == 7


def test_resample_sources_match_paper():
    """Sec. II-D: 0<->7, 1<->8, 2<->9, 3<->10; 4 from 1, 5 from 2, 6 from 3."""
    s = CombinationScheme(13, 4, duplicates=True)
    expect = {0: 7, 7: 0, 1: 8, 8: 1, 2: 9, 9: 2, 3: 10, 10: 3,
              4: 1, 5: 2, 6: 3}
    for gid, src in expect.items():
        assert s.resample_source(gid) == src


def test_lower_resample_source_is_superset_grid():
    s = CombinationScheme(13, 4, duplicates=True)
    for lower in s.lower:
        src = s[s.resample_source(lower.gid)]
        assert src.index[0] >= lower.index[0]
        assert src.index[1] >= lower.index[1]


def test_conflict_pairs_match_paper():
    """Sec. III: not 3&6, 2&5, 1&4, 0&7, 1&8, 2&9, 3&10 simultaneously."""
    s = CombinationScheme(13, 4, duplicates=True)
    assert s.rc_conflict_pairs() == [(0, 7), (1, 4), (1, 8), (2, 5), (2, 9),
                                     (3, 6), (3, 10)]


def test_no_resample_source_without_duplicates():
    s = CombinationScheme(8, 4)
    assert s.resample_source(0) is None      # diagonal, no duplicate
    assert s.resample_source(4) == 1         # lower still resamples


def test_points_property():
    s = CombinationScheme(8, 4)
    g = s[0]  # (5, 8)
    assert g.points == 33 * 257
    assert g.level_x == 5 and g.level_y == 8


@pytest.mark.parametrize("n,l", [(4, 4), (6, 4), (8, 4), (10, 6), (7, 5)])
def test_general_levels_structure(n, l):
    s = CombinationScheme(n, l, duplicates=True, extra_layers=2)
    assert len(s.diagonal) == l
    assert len(s.lower) == l - 1
    assert len(s.duplicates_list) == l
    assert len(s.extra) == (l - 2) + (l - 3)
    for g in s.diagonal:
        assert sum(g.index) == 2 * n - l + 1
    for g in s.lower:
        assert sum(g.index) == 2 * n - l
    assert all(min(g.index) >= n - l + 1 for g in s.grids)


def test_invalid_configs_rejected():
    with pytest.raises(ValueError):
        CombinationScheme(3, 4)            # n < l
    with pytest.raises(ValueError):
        CombinationScheme(8, 1)            # level too small
    with pytest.raises(ValueError):
        CombinationScheme(8, 4, extra_layers=3)  # more layers than exist


def test_describe_lists_all_grids():
    s = CombinationScheme(8, 4, duplicates=True)
    text = s.describe()
    assert text.count("] diagonal") == 4
    assert text.count("] duplicate") == 4
    assert "(5, 8)" in text


def test_full_index():
    assert CombinationScheme(9, 4).full_index() == (9, 9)
