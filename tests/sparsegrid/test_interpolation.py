"""Resampling between anisotropic nodal grids."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparsegrid import axis_points, nodal_of, resample

levels = st.tuples(st.integers(0, 5), st.integers(0, 5))


def f_bilinear(x, y):
    return 2.0 + x - 3.0 * y + 0.5 * x * y


def test_axis_points():
    assert np.allclose(axis_points(2), [0, 0.25, 0.5, 0.75, 1.0])


def test_nodal_of_shape():
    v = nodal_of(f_bilinear, (3, 2))
    assert v.shape == (9, 5)


def test_restriction_is_exact_sampling():
    v = nodal_of(f_bilinear, (4, 4))
    r = resample(v, (4, 4), (2, 3))
    assert np.allclose(r, nodal_of(f_bilinear, (2, 3)), atol=1e-14)


def test_identity_resample_copies():
    v = nodal_of(f_bilinear, (3, 3))
    r = resample(v, (3, 3), (3, 3))
    assert np.allclose(r, v)
    r[0, 0] = 99
    assert v[0, 0] != 99  # copy, not view


def test_prolongation_bilinear_exact_for_bilinear():
    v = nodal_of(f_bilinear, (2, 2))
    up = resample(v, (2, 2), (5, 4))
    assert np.allclose(up, nodal_of(f_bilinear, (5, 4)), atol=1e-13)


def test_mixed_restrict_and_prolong():
    v = nodal_of(f_bilinear, (4, 1))
    out = resample(v, (4, 1), (2, 3))
    assert np.allclose(out, nodal_of(f_bilinear, (2, 3)), atol=1e-13)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        resample(np.zeros((4, 4)), (2, 2), (1, 1))


def test_round_trip_restrict_of_prolong_is_identity():
    rng = np.random.default_rng(0)
    v = rng.random((5, 9))  # grid (2, 3)
    up = resample(v, (2, 3), (4, 5))
    back = resample(up, (4, 5), (2, 3))
    assert np.allclose(back, v, atol=1e-13)


@given(levels, levels)
@settings(max_examples=40, deadline=None)
def test_resample_preserves_constants(src, dst):
    v = np.full(((1 << src[0]) + 1, (1 << src[1]) + 1), 3.25)
    out = resample(v, src, dst)
    assert out.shape == ((1 << dst[0]) + 1, (1 << dst[1]) + 1)
    assert np.allclose(out, 3.25)


@given(levels, levels)
@settings(max_examples=40, deadline=None)
def test_resample_within_data_range(src, dst):
    rng = np.random.default_rng(src[0] * 7 + dst[1])
    v = rng.random(((1 << src[0]) + 1, (1 << src[1]) + 1))
    out = resample(v, src, dst)
    assert out.min() >= v.min() - 1e-12
    assert out.max() <= v.max() + 1e-12


@given(levels)
@settings(max_examples=30, deadline=None)
def test_prolongation_interpolates_nodes_exactly(src):
    """Source nodes are a subset of any finer grid: values must carry over."""
    rng = np.random.default_rng(42)
    v = rng.random(((1 << src[0]) + 1, (1 << src[1]) + 1))
    dst = (src[0] + 1, src[1] + 2)
    out = resample(v, src, dst)
    sx = 1 << (dst[0] - src[0])
    sy = 1 << (dst[1] - src[1])
    assert np.allclose(out[::sx, ::sy], v, atol=1e-13)


# ----------------------------------------------------------------------
# memoised axis weights (shared, frozen arrays)
# ----------------------------------------------------------------------

def test_axis_weights_are_frozen():
    from repro.sparsegrid.interpolation import _axis_resample_weights
    for pair in ((5, 3), (3, 5), (4, 4)):
        for arr in _axis_resample_weights(*pair):
            assert not arr.flags.writeable
            with pytest.raises(ValueError):
                arr[0] = 99


def test_axis_weights_are_memoised():
    from repro.sparsegrid.interpolation import _axis_resample_weights
    a = _axis_resample_weights(6, 4)
    b = _axis_resample_weights(6, 4)
    assert all(x is y for x, y in zip(a, b))


def test_resample_caller_cannot_corrupt_cache():
    """The arrays resample builds from the cached weights are fresh; a
    caller scribbling on its result must not affect later resamples."""
    rng = np.random.default_rng(0)
    v = rng.random((17, 17))
    first = resample(v, (4, 4), (3, 5))
    expected = first.copy()
    first[:] = -1.0
    again = resample(v, (4, 4), (3, 5))
    assert np.array_equal(again, expected)
