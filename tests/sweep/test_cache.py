"""Content-addressed run cache: keying rules and blob-store semantics."""

import numpy as np
import pytest

from repro.core import AppConfig, RunMetrics
from repro.ft.checkpoint import Disk
from repro.ft.failure_injection import Kill
from repro.machine.presets import IDEAL, OPL, RAIJIN
from repro.sweep import RunCache, cacheable, fingerprint, run_key


def cfg(**kw):
    kw.setdefault("n", 6)
    kw.setdefault("level", 4)
    kw.setdefault("technique_code", "CR")
    kw.setdefault("steps", 4)
    kw.setdefault("diag_procs", 2)
    return AppConfig(**kw)


# ----------------------------------------------------------------------
# fingerprint / run_key
# ----------------------------------------------------------------------

def test_fingerprint_is_stable():
    assert fingerprint(cfg()) == fingerprint(cfg())
    assert run_key(cfg(), OPL) == run_key(cfg(), OPL)


def test_key_changes_with_any_config_field():
    base = run_key(cfg(), OPL)
    assert run_key(cfg(n=7), OPL) != base
    assert run_key(cfg(steps=8), OPL) != base
    assert run_key(cfg(technique_code="RC"), OPL) != base
    assert run_key(cfg(simulated_lost_gids=(1,)), OPL) != base
    assert run_key(cfg(compute_scale=2.0), OPL) != base
    assert run_key(cfg(checkpoint_count=None), OPL) != base


def test_key_changes_with_machine_kills_and_spares():
    base = run_key(cfg(), OPL)
    assert run_key(cfg(), RAIJIN) != base
    assert run_key(cfg(), IDEAL) != base
    assert run_key(cfg(), OPL, kills=(Kill(3, 1.0),)) != base
    assert run_key(cfg(), OPL, kills=(Kill(3, 2.0),)) != base
    assert run_key(cfg(), OPL, n_spares=1) != base


def test_fingerprint_distinguishes_float_bit_patterns():
    assert fingerprint(0.1 + 0.2) != fingerprint(0.3)
    assert fingerprint(np.float64(1.0)) == fingerprint(np.float64(1.0))


def test_fingerprint_covers_ndarrays():
    a = np.arange(6.0).reshape(2, 3)
    assert fingerprint(a) == fingerprint(a.copy())
    assert fingerprint(a) != fingerprint(a.T)
    assert fingerprint(a) != fingerprint(a.astype(np.float32))


def test_disk_bearing_configs_are_uncacheable():
    assert cacheable(cfg())
    assert not cacheable(cfg(disk=Disk()))


# ----------------------------------------------------------------------
# RunCache
# ----------------------------------------------------------------------

def _metrics(**kw):
    m = RunMetrics(technique="CR", machine="OPL", n=6, level=4, steps=4,
                   world_size=9)
    for k, v in kw.items():
        setattr(m, k, v)
    return m


def test_cache_round_trip_and_stats():
    c = RunCache()
    key = run_key(cfg(), OPL)
    assert c.get(key) is None
    c.put(key, _metrics(t_solve=1.5))
    got = c.get(key)
    assert got.t_solve == 1.5
    assert len(c) == 1 and key in c
    s = c.stats()
    assert s == {"entries": 1, "memory_entries": 1, "disk_entries": 0,
                 "hits": 1, "misses": 1, "hit_rate": 0.5}


def test_cache_returns_owned_copies():
    c = RunCache()
    c.put("k", _metrics(phase_breakdown={"solve": 1.0}))
    first = c.get("k")
    first.phase_breakdown["solve"] = 99.0
    first.t_solve = -1.0
    again = c.get("k")
    assert again.phase_breakdown == {"solve": 1.0}
    assert again.t_solve != -1.0


def test_cache_persists_to_disk(tmp_path):
    d = str(tmp_path / "cache")
    c1 = RunCache(directory=d)
    c1.put("deadbeef", _metrics(t_total=3.0))
    # a fresh instance over the same directory serves the entry
    c2 = RunCache(directory=d)
    got = c2.get("deadbeef")
    assert got is not None and got.t_total == 3.0
    assert c2.stats()["hits"] == 1


def test_in_memory_cache_does_not_persist():
    c1 = RunCache()
    c1.put("k", _metrics())
    assert RunCache().get("k") is None


def test_disk_layer_is_sharded_and_atomic(tmp_path):
    d = str(tmp_path / "cache")
    c = RunCache(directory=d)
    c.put("deadbeef", _metrics())
    shard = c.store.directory / "de" / "deadbeef.pkl"
    assert shard.is_file()
    assert c.store.stats().tmp_files == 0


def test_corrupt_disk_blob_is_a_miss_and_quarantined(tmp_path):
    """Regression: a truncated blob (crashed writer on the pre-sharding
    layout) must read as a miss, not crash ``pickle.loads``."""
    d = str(tmp_path / "cache")
    c1 = RunCache(directory=d)
    c1.put("deadbeef", _metrics(t_total=3.0))
    path = c1.store.path_for("deadbeef")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])      # torn write

    c2 = RunCache(directory=d)
    assert c2.get("deadbeef") is None
    assert c2.stats()["misses"] == 1
    # the bad blob is quarantined, not deleted and not retried
    assert not path.exists()
    assert c2.store.stats().corrupt == 1
    # the key is writable again and round-trips
    c2.put("deadbeef", _metrics(t_total=4.0))
    assert RunCache(directory=d).get("deadbeef").t_total == 4.0


def test_corrupt_legacy_flat_blob_is_quarantined(tmp_path):
    d = tmp_path / "cache"
    d.mkdir()
    (d / "deadbeef.pkl").write_bytes(b"not a pickle")
    c = RunCache(directory=str(d))
    assert c.get("deadbeef") is None
    assert not (d / "deadbeef.pkl").exists()
    assert (d / "deadbeef.corrupt").exists()


def test_fresh_process_counts_disk_entries(tmp_path):
    """Regression: a fresh RunCache over a warm --cache DIR used to
    report ``entries: 0`` (it counted only the in-memory layer)."""
    d = str(tmp_path / "cache")
    c1 = RunCache(directory=d)
    c1.put("deadbeef", _metrics())
    c1.put("cafebabe", _metrics())

    c2 = RunCache(directory=d)
    assert len(c2) == 2
    s = c2.stats()
    assert s["entries"] == 2
    assert s["disk_entries"] == 2
    assert s["memory_entries"] == 0
    # an entry in both layers is counted once
    c2.get("deadbeef")
    assert c2.stats()["entries"] == 2
    assert c2.stats()["memory_entries"] == 1


def test_legacy_flat_cache_dir_still_serves(tmp_path):
    """Caches written before sharding (flat <key>.pkl) keep working."""
    import pickle

    d = tmp_path / "cache"
    d.mkdir()
    (d / "deadbeef.pkl").write_bytes(pickle.dumps(_metrics(t_total=7.0)))
    c = RunCache(directory=str(d))
    assert c.get("deadbeef").t_total == 7.0
    assert len(c) == 1
