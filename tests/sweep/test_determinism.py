"""Serial vs pooled sweeps must produce byte-identical documents.

This is the engine's headline guarantee: ``--workers`` changes wall
clock, never results.  The comparison strips only the wall-clock params
(``wall_s``, ``workers``) — every point value, including the float
phase breakdowns, must match to the last bit.
"""

import json

import pytest

from repro.cli import main as cli_main


def _doc(tmp_path, name, workers):
    tmp_path.mkdir(parents=True, exist_ok=True)
    out = tmp_path / f"{name}_w{workers}.json"
    rc = cli_main(["experiment", name, "--quick",
                   "--workers", str(workers), "--json", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    for k in ("wall_s", "workers"):
        doc["params"].pop(k)
    return doc


@pytest.mark.slow
def test_fig9_quick_workers_1_vs_2_byte_identical(tmp_path):
    serial = _doc(tmp_path, "fig9", 1)
    pooled = _doc(tmp_path, "fig9", 2)
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(pooled, sort_keys=True)
    # the cache statistics are a function of the batch, not of the pool
    assert serial["params"]["cache_misses"] == \
        pooled["params"]["cache_misses"]


def test_fig9_repeat_invocations_identical(tmp_path):
    a = _doc(tmp_path / "a", "fig9", 1)
    b = _doc(tmp_path / "b", "fig9", 1)
    assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
