"""Pool-transport contract: everything crossing the boundary pickles.

The sweep engine ships :class:`SweepPoint` values to worker processes and
ships :class:`RunMetrics` back (and stores them as cache blobs), so both
must survive a pickle round trip with full fidelity — including the
nested observability dicts.
"""

import pickle

from repro.core import AppConfig, RunMetrics, run_app
from repro.ft.failure_injection import Kill
from repro.machine.presets import IDEAL, OPL
from repro.sweep import SweepPoint


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


def test_appconfig_round_trip():
    cfg = AppConfig(n=6, level=4, technique_code="RC", steps=4,
                    diag_procs=2, simulated_lost_gids=(1, 3))
    back = roundtrip(cfg)
    assert back == cfg
    assert back.scheme().grids == cfg.scheme().grids


def test_machine_and_kill_round_trip():
    assert roundtrip(OPL) == OPL
    assert roundtrip(Kill(rank=3, at=1.5)) == Kill(rank=3, at=1.5)


def test_sweep_point_round_trip_preserves_key():
    p = SweepPoint(AppConfig(n=6, level=4, steps=2, diag_procs=1), OPL,
                   kills=(Kill(2, 0.5),), n_spares=1)
    back = roundtrip(p)
    assert back == p
    assert back.key() == p.key()


def test_run_metrics_round_trip_with_phase_observability():
    cfg = AppConfig(n=6, level=4, technique_code="AC", steps=2,
                    diag_procs=1, simulated_lost_gids=(2,))
    m = run_app(cfg, IDEAL)
    assert m.phase_breakdown  # the fields under test are populated
    assert m.phase_by_grid
    back = roundtrip(m)
    assert back.to_dict() == m.to_dict()
    assert back.phase_breakdown == m.phase_breakdown
    assert back.phase_by_grid == m.phase_by_grid
    assert back.coefficients == m.coefficients


def test_fresh_metrics_round_trip():
    m = RunMetrics(technique="CR", machine="OPL", n=6, level=4, steps=4,
                   world_size=9)
    m.error_l1 = m.error_l2 = m.error_linf = 0.25  # NaN breaks == compares
    assert roundtrip(m).to_dict() == m.to_dict()
