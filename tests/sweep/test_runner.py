"""SweepRunner: fan-out, deduplication, serial/pool equivalence."""

import pytest

from repro.core import AppConfig, run_app
from repro.ft.checkpoint import Disk
from repro.machine.presets import IDEAL, OPL
from repro.sweep import (RunCache, SweepPoint, SweepRunner, make_runner,
                         resolve_workers)


def cfg(**kw):
    kw.setdefault("n", 6)
    kw.setdefault("level", 4)
    kw.setdefault("technique_code", "AC")
    kw.setdefault("steps", 2)
    kw.setdefault("diag_procs", 1)
    return AppConfig(**kw)


# ----------------------------------------------------------------------
# worker resolution
# ----------------------------------------------------------------------

def test_resolve_workers_explicit_wins(monkeypatch):
    monkeypatch.setattr("repro.sweep.runner.os.cpu_count", lambda: 8)
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert resolve_workers(3) == 3
    assert resolve_workers() == 7


def test_resolve_workers_defaults_serial(monkeypatch):
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert resolve_workers() == 1
    assert resolve_workers(0) == 1  # clamped


def test_resolve_workers_serial_on_one_cpu(monkeypatch):
    monkeypatch.setattr("repro.sweep.runner.os.cpu_count", lambda: 1)
    monkeypatch.setenv("REPRO_WORKERS", "7")
    assert resolve_workers() == 1       # pool would only add overhead
    assert resolve_workers(7) == 7      # explicit --workers still wins
    monkeypatch.setattr("repro.sweep.runner.os.cpu_count", lambda: None)
    assert resolve_workers() == 1       # unknown CPU count: play safe


def test_resolve_workers_rejects_junk_env(monkeypatch):
    monkeypatch.setattr("repro.sweep.runner.os.cpu_count", lambda: 8)
    monkeypatch.setenv("REPRO_WORKERS", "lots")
    with pytest.raises(ValueError, match="REPRO_WORKERS"):
        resolve_workers()


# ----------------------------------------------------------------------
# points and keys
# ----------------------------------------------------------------------

def test_point_key_none_when_disk_supplied():
    assert SweepPoint(cfg(), OPL).key() is not None
    assert SweepPoint(cfg(disk=Disk()), OPL).key() is None


def test_equal_points_share_a_key():
    assert SweepPoint(cfg(), OPL).key() == SweepPoint(cfg(), OPL).key()
    assert SweepPoint(cfg(), OPL).key() != SweepPoint(cfg(), IDEAL).key()


# ----------------------------------------------------------------------
# execution semantics
# ----------------------------------------------------------------------

def test_duplicates_execute_once():
    runner = SweepRunner(workers=1)
    p = SweepPoint(cfg(), IDEAL)
    results = runner.run([p, p, p])
    s = runner.cache.stats()
    assert s["misses"] == 1 and s["hits"] == 2
    d = [m.to_dict() for m in results]
    assert d[0] == d[1] == d[2]
    # duplicates are owned copies, not aliases
    assert results[0] is not results[1]


def test_cross_batch_memoisation():
    runner = SweepRunner(workers=1)
    p = SweepPoint(cfg(), IDEAL)
    first = runner.run_one(p)
    again = runner.run_one(p)
    assert runner.cache.stats() == {"entries": 1, "memory_entries": 1,
                                    "disk_entries": 0, "hits": 1,
                                    "misses": 1, "hit_rate": 0.5}
    assert first.to_dict() == again.to_dict()


def test_results_keep_declaration_order():
    runner = SweepRunner(workers=1)
    pts = [SweepPoint(cfg(steps=s), IDEAL) for s in (2, 4, 2, 6)]
    out = runner.run(pts)
    assert [m.steps for m in out] == [2, 4, 2, 6]


def test_uncacheable_points_run_inline_with_visible_disk():
    disk = Disk()
    runner = SweepRunner(workers=1)
    p = SweepPoint(cfg(technique_code="CR", checkpoint_count=2, disk=disk),
                   IDEAL)
    runner.run([p, p])
    # never cached: both executions really ran
    assert runner.cache.stats()["hits"] == 0
    assert runner.cache.stats()["misses"] == 0
    # ... and the caller's disk saw the checkpoint writes
    assert disk._store


def test_cacheable_point_config_stays_pristine():
    p = SweepPoint(cfg(technique_code="CR", checkpoint_count=2), IDEAL)
    SweepRunner(workers=1).run_one(p)
    assert p.cfg.disk is None  # run_app's scratch disk stayed on a copy


def test_pool_matches_serial():
    pts = [SweepPoint(cfg(steps=s, technique_code=t), IDEAL)
           for s in (2, 3) for t in ("CR", "AC")]
    serial = SweepRunner(workers=1).run(pts)
    pooled = SweepRunner(workers=2).run(pts)
    assert [m.to_dict() for m in serial] == [m.to_dict() for m in pooled]


def test_shared_cache_across_runners():
    cache = RunCache()
    p = SweepPoint(cfg(), IDEAL)
    SweepRunner(workers=1, cache=cache).run_one(p)
    SweepRunner(workers=1, cache=cache).run_one(p)
    assert cache.stats()["misses"] == 1
    assert cache.stats()["hits"] == 1


def test_make_runner_reuses_existing():
    r = SweepRunner(workers=1)
    assert make_runner(r, workers=5, cache=None) is r
    fresh = make_runner(None, workers=2, cache=None)
    assert fresh.workers == 2


def test_cached_run_matches_direct_run_app():
    p = SweepPoint(cfg(), IDEAL)
    via_runner = SweepRunner(workers=1).run_one(p)
    direct = run_app(cfg(), IDEAL)
    assert via_runner.to_dict() == direct.to_dict()
