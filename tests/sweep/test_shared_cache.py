"""Multi-process shared-cache access.

Two or more processes sweeping overlapping point sets against one
``--cache DIR`` must finish with no lost updates, no partial reads, and
bit-identical metrics to a serial run — the contract that lets any
number of sweep clients and ``repro serve`` workers share one store.
"""

import multiprocessing
import pickle

import pytest

from repro.core import AppConfig
from repro.machine.presets import IDEAL, OPL
from repro.sweep import RunCache, SweepPoint, SweepRunner


def _cfg(technique="CR", steps=4):
    return AppConfig(n=6, level=4, technique_code=technique, steps=steps,
                     diag_procs=2)


def _points():
    return [SweepPoint(_cfg(t, s), m)
            for m in (IDEAL, OPL)
            for t in ("CR", "AC")
            for s in (2, 4)]


def _sweep_proc(cache_dir, lo, hi, out):
    """One client process: sweep a slice of the grid through the shared
    cache and ship the pickled metrics back."""
    runner = SweepRunner(workers=1, cache=RunCache(directory=cache_dir))
    results = runner.run(_points()[lo:hi])
    out.put(pickle.dumps(((lo, hi), [vars(m) for m in results])))


@pytest.mark.slow
def test_overlapping_sweeps_share_one_store_bit_identically(tmp_path):
    cache_dir = str(tmp_path / "shared")
    points = _points()
    # overlapping slices: [0, 6) and [2, 8) — four points in common
    slices = [(0, 6), (2, len(points))]

    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [ctx.Process(target=_sweep_proc,
                         args=(cache_dir, lo, hi, out))
             for lo, hi in slices]
    for p in procs:
        p.start()
    payloads = [pickle.loads(out.get(timeout=300)) for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    # serial reference, cold cache, same process
    reference = SweepRunner(workers=1).run(points)
    ref_dicts = [vars(m) for m in reference]

    # both clients saw bit-identical metrics for their slices (queue
    # order is arbitrary; each payload names its slice)
    assert {s for s, _ in payloads} == set(slices)
    for (lo, hi), dicts in payloads:
        assert dicts == ref_dicts[lo:hi]

    # no partial writes, no quarantine events, no lost entries: the
    # store holds every distinct point exactly once and all blobs load
    shared = RunCache(directory=cache_dir)
    distinct = {pt.key() for pt in points}
    assert shared.store.stats().tmp_files == 0
    assert shared.store.stats().corrupt == 0
    assert set(shared.store.keys()) == distinct
    for key in distinct:
        cached = shared.get(key)
        assert cached is not None

    # a fresh client over the warm store reproduces the serial run
    # without executing anything
    warm = SweepRunner(workers=1, cache=RunCache(directory=cache_dir))
    again = warm.run(points)
    assert [vars(m) for m in again] == ref_dicts
    assert warm.cache.stats()["misses"] == 0


@pytest.mark.slow
def test_concurrent_identical_sweeps_last_writer_wins(tmp_path):
    """Both processes run the *same* full set: every key is written by
    both, racing — last writer wins must still serve complete blobs."""
    cache_dir = str(tmp_path / "race")
    n = len(_points())

    ctx = multiprocessing.get_context("fork")
    out = ctx.Queue()
    procs = [ctx.Process(target=_sweep_proc, args=(cache_dir, 0, n, out))
             for _ in range(2)]
    for p in procs:
        p.start()
    payloads = [pickle.loads(out.get(timeout=300))[1] for _ in procs]
    for p in procs:
        p.join(timeout=60)
        assert p.exitcode == 0

    assert payloads[0] == payloads[1]
    store = RunCache(directory=cache_dir).store
    assert store.stats().tmp_files == 0
    assert store.verify()["corrupt"] == []
