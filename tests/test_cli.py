"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_run_baseline(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out
    assert "AC on OPL" in out


def test_run_with_simulated_loss(capsys):
    rc = main(["run", "--technique", "RC", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--lose", "1", "--machine", "ideal"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "grids [1]" in out


def test_run_with_real_failures(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--failures", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "failures           : 1" in out
    assert "reconstruction" in out
    assert "checkpoints" in out


def test_run_json_output(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--json", "--machine", "ideal"])
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["technique"] == "AC"
    assert data["world_size"] == 14
    assert "error_l1" in data


def test_describe(capsys):
    rc = main(["describe", "--technique", "RC", "--n", "6",
               "--diag-procs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CombinationScheme" in out
    assert "Layout" in out
    assert "replica-pair constraints" in out


def test_experiment_quick_fig10(capsys):
    rc = main(["experiment", "fig10", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out


def test_experiment_table1(capsys):
    rc = main(["experiment", "table1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "112.610" in out  # the 304-core spawn time


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--machine", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_quick_fig9(capsys):
    rc = main(["experiment", "fig9", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Raijin" in out and "recovery" in out


def test_run_2d_decomposition(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "4", "--decomposition", "2d",
               "--machine", "ideal"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out


def test_run_machine_optimal_checkpoints(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--checkpoints", "-1",
               "--compute-scale", "1e6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "checkpoints" in out
