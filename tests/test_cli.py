"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


def test_run_baseline(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out
    assert "AC on OPL" in out


def test_run_with_simulated_loss(capsys):
    rc = main(["run", "--technique", "RC", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--lose", "1", "--machine", "ideal"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "grids [1]" in out


def test_run_with_real_failures(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--failures", "1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "failures           : 1" in out
    assert "reconstruction" in out
    assert "checkpoints" in out


def test_run_json_output(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--json", "--machine", "ideal"])
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["technique"] == "AC"
    assert data["world_size"] == 14
    assert "error_l1" in data


def test_describe(capsys):
    rc = main(["describe", "--technique", "RC", "--n", "6",
               "--diag-procs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "CombinationScheme" in out
    assert "Layout" in out
    assert "replica-pair constraints" in out


def test_experiment_quick_fig10(capsys):
    rc = main(["experiment", "fig10", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out


def test_experiment_table1(capsys):
    rc = main(["experiment", "table1"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "112.610" in out  # the 304-core spawn time


def test_unknown_machine_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--machine", "nope"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_quick_fig9(capsys):
    rc = main(["experiment", "fig9", "--quick"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "Raijin" in out and "recovery" in out


def test_run_2d_decomposition(capsys):
    rc = main(["run", "--technique", "AC", "--n", "6", "--steps", "8",
               "--diag-procs", "4", "--decomposition", "2d",
               "--machine", "ideal"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "l1 error" in out


def test_run_machine_optimal_checkpoints(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--checkpoints", "-1",
               "--compute-scale", "1e6"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "checkpoints" in out


def test_run_prints_phase_breakdown(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2"])
    out = capsys.readouterr().out
    assert rc == 0
    assert "phase breakdown" in out
    assert "checkpoint_write" in out and "combine" in out


def test_run_json_includes_phase_breakdown(capsys):
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--json"])
    data = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert data["phase_breakdown"]["checkpoint_write"] > 0
    assert "phase_by_grid" in data


def test_experiment_json_document(tmp_path, capsys):
    from repro.obs import validate_experiment_doc
    out_path = tmp_path / "fig10.json"
    rc = main(["experiment", "fig10", "--quick", "--json", str(out_path)])
    assert rc == 0
    doc = json.loads(out_path.read_text())
    validate_experiment_doc(doc)
    assert doc["experiment"] == "fig10"
    params = doc["params"]
    assert params["quick"] is True
    assert params["workers"] == 1
    assert params["wall_s"] > 0
    assert params["cache_misses"] > 0  # every unique point really ran
    assert any(pt["phases"] for pt in doc["points"])


def test_experiment_json_stdout(capsys):
    rc = main(["experiment", "fig9", "--quick", "--json", "-"])
    out = capsys.readouterr().out
    assert rc == 0
    doc = json.loads(out)
    assert doc["experiment"] == "fig9"
    assert all("phases" in pt for pt in doc["points"])


def test_timeline_from_traced_run(tmp_path, capsys):
    from repro.obs import validate_chrome_trace
    trace = tmp_path / "trace.jsonl"
    timeline = tmp_path / "timeline.json"
    rc = main(["run", "--technique", "CR", "--n", "6", "--steps", "8",
               "--diag-procs", "2", "--failures", "1",
               "--trace", str(trace)])
    assert rc == 0
    capsys.readouterr()
    rc = main(["timeline", str(trace), "-o", str(timeline)])
    assert rc == 0
    doc = json.loads(timeline.read_text())
    validate_chrome_trace(doc)
    names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert "reconstruct" in names


def test_timeline_missing_file_errors():
    with pytest.raises(SystemExit, match="no such trace file"):
        main(["timeline", "/nonexistent/trace.jsonl"])


def _seed_cache(directory):
    from repro.sweep import RunCache
    cache = RunCache(directory=str(directory))
    cache.put("deadbeef", {"t_total": 1.0})
    cache.put("cafebabe", {"t_total": 2.0})
    return cache


def test_cache_stats_subcommand(tmp_path, capsys):
    d = tmp_path / "cache"
    _seed_cache(d)
    rc = main(["cache", "stats", "--cache", str(d), "--json"])
    stats = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert stats["entries"] == 2
    assert stats["shards"] == 2
    assert stats["corrupt"] == 0


def test_cache_verify_flags_corrupt_blob(tmp_path, capsys):
    d = tmp_path / "cache"
    cache = _seed_cache(d)
    path = cache.store.path_for("deadbeef")
    path.write_bytes(path.read_bytes()[:4])        # torn write
    rc = main(["cache", "verify", "--cache", str(d)])
    out = capsys.readouterr().out
    assert rc == 1                                 # findings -> exit 1
    assert "deadbeef" in out
    # quarantine, then gc sweeps the quarantined blob away
    assert main(["cache", "verify", "--cache", str(d),
                 "--quarantine"]) == 1
    capsys.readouterr()
    rc = main(["cache", "gc", "--cache", str(d), "--json"])
    report = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert report["corrupt_removed"] == 1
    assert main(["cache", "verify", "--cache", str(d)]) == 0


def test_cache_missing_directory_is_usage_error(capsys):
    rc = main(["cache", "stats", "--cache", "/nonexistent/cache"])
    assert rc == 2
    assert "no such cache" in capsys.readouterr().err


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--cache", "/tmp/c"])
    assert args.port == 8642
    assert args.queue_workers == 2
    assert args.max_pending == 32
    assert args.cache == "/tmp/c"


def test_experiment_names_match_service_registry():
    """The CLI's experiment choices and the HTTP service must expose the
    same catalogue — both sit on the same registry."""
    from repro.experiments.registry import experiment_names
    args = build_parser().parse_args(["experiment", "table1"])
    assert args.name in experiment_names()
    for name in experiment_names():
        assert build_parser().parse_args(["experiment", name]).name == name
