"""The shipped examples must run and say what they claim."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "baseline l1 error" in out
    assert "alternate combination coefficients" in out
    assert "x baseline" in out


def test_ulfm_primitives(capsys):
    out = run_example("ulfm_primitives.py", capsys)
    assert "MPI_ERR_PROC_FAILED" in out
    assert "shrink: 6 -> 5" in out
    assert "replacement regained rank 3/6" in out
    assert "original order restored" in out


def test_heat_equation(capsys):
    out = run_example("heat_equation.py", capsys)
    assert "heat equation" in out
    assert "recovered l1 error" in out


@pytest.mark.slow
def test_fault_recovery_demo(capsys):
    out = run_example("fault_recovery_demo.py", capsys)
    for code in ("CR", "RC", "AC"):
        assert f"--- {code}:" in out
    assert "Table I" in out
