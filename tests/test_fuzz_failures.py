"""Failure-injection fuzzing: randomized kills against the full pipeline.

These are the highest-value integration tests in the suite: random victim
sets at random times (including Poisson-process failures and kills landing
mid-recovery) must always end in a completed run with a finite error —
never a deadlock, never an unhandled exception.
"""

import numpy as np
import pytest

from repro.core import AppConfig, baseline_solve_time, run_app
from repro.core.app import app_main
from repro.core.runner import make_universe
from repro.ft.failure_injection import FailureGenerator, Kill
from repro.machine.presets import OPL


def fuzz_run(code, kills, *, n=6, diag_procs=2, steps=16, n_spares=0,
             decomposition="1d"):
    cfg = AppConfig(n=n, level=4, technique_code=code, steps=steps,
                    diag_procs=diag_procs, checkpoint_count=4,
                    decomposition=decomposition)
    uni, total = make_universe(cfg, OPL, n_spares=n_spares)
    job = uni.launch(total, app_main, argv=(cfg,))
    gen = FailureGenerator()
    gen.inject(uni, job, kills)
    uni.run()
    m = job.results()[0]
    assert m is not None, "rank 0 must survive and report"
    assert np.isfinite(m.error_l1)
    return m


def _solve_window(code, n=6, diag_procs=2, steps=16):
    cfg = AppConfig(n=n, level=4, technique_code=code, steps=steps,
                    diag_procs=diag_procs, checkpoint_count=4)
    m = run_app(cfg, OPL)
    return m.t_solve, m.t_total, cfg.layout()


@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
@pytest.mark.parametrize("seed", range(6))
def test_random_kills_during_solve(code, seed):
    t_solve, _t_total, layout = _solve_window(code)
    pairs = layout.conflict_pairs_ranks() if code == "RC" else ()
    gen = FailureGenerator(seed, protect={0}, conflict_pairs=pairs,
                           rank_to_grid=layout.gid_of)
    n_failures = 1 + seed % 3
    frac = 0.15 + 0.7 * ((seed * 37) % 10) / 10.0
    kills = gen.plan(layout.total_procs, n_failures,
                     at=max(t_solve * frac, 1e-9))
    m = fuzz_run(code, kills)
    assert m.n_failures == n_failures
    assert len(m.lost_gids) >= 1


@pytest.mark.parametrize("code", ["CR", "AC"])
@pytest.mark.parametrize("seed", range(4))
def test_poisson_failures_over_the_run(code, seed):
    """MTBF-driven failures spread across the whole solve window."""
    t_solve, _, layout = _solve_window(code)
    gen = FailureGenerator(seed, protect={0},
                           rank_to_grid=layout.gid_of)
    horizon = max(t_solve * 0.9, 1e-6)
    kills = gen.poisson_plan(layout.total_procs, mtbf=horizon / 3.0,
                             horizon=horizon, max_failures=3)
    m = fuzz_run(code, kills)
    assert m.n_failures == len(kills)


@pytest.mark.parametrize("seed", range(4))
def test_staggered_kills_across_cr_segments(seed):
    """Failures landing in different checkpoint segments, one after the
    other, each repaired before the next hits.

    Earlier repairs stretch/compress the failed run's timeline relative to
    the clean run used for scheduling, so a late kill can land after the
    final detection point (and is then simply a process dying after the
    job finished) — at least the first two must be detected, and recovery
    stays exact regardless.
    """
    t_solve, t_total, layout = _solve_window("CR")
    gen = FailureGenerator(seed, protect={0}, rank_to_grid=layout.gid_of)
    victims = gen.choose_victims(layout.total_procs, 3)
    kills = [Kill(v, max(t_solve * f, 1e-9))
             for v, f in zip(victims, (0.15, 0.45, 0.7))]
    m = fuzz_run("CR", kills)
    assert 2 <= m.n_failures <= 3
    # exact recovery regardless of how many hits landed
    clean = run_app(AppConfig(n=6, level=4, technique_code="CR", steps=16,
                              diag_procs=2, checkpoint_count=4), OPL)
    assert m.error_l1 == pytest.approx(clean.error_l1, rel=1e-12)


@pytest.mark.parametrize("code", ["CR", "AC"])
def test_kill_landing_mid_reconstruction(code):
    """A second failure timed to land while the first repair is running
    (the repair-retry / Fig. 3 loop path).  The repair window is measured
    from a single-failure run of the same configuration."""
    t_solve, t_total, layout = _solve_window(code)
    gen = FailureGenerator(11, protect={0}, rank_to_grid=layout.gid_of)
    v1, v2 = gen.choose_victims(layout.total_procs, 2)
    t1 = max(t_solve * 0.5, 1e-9)
    probe = fuzz_run(code, [Kill(v1, t1)])
    assert probe.n_failures == 1
    window = probe.t_reconstruct + probe.t_detect
    assert window > 0
    kills = [Kill(v1, t1), Kill(v2, t1 + window * 0.5)]
    m = fuzz_run(code, kills)
    assert m.n_failures == 2


@pytest.mark.parametrize("code", ["CR", "RC", "AC"])
def test_fuzz_2d_decomposition(code):
    t_solve, _, layout = _solve_window(code, diag_procs=4)
    gen = FailureGenerator(5, protect={0},
                           conflict_pairs=layout.conflict_pairs_ranks()
                           if code == "RC" else (),
                           rank_to_grid=layout.gid_of)
    kills = gen.plan(layout.total_procs, 2, at=max(t_solve * 0.4, 1e-9))
    m = fuzz_run(code, kills, diag_procs=4, decomposition="2d")
    assert m.n_failures == 2


def test_many_failures_half_the_grids():
    """Paper's extreme: up to 5 of the AC grids lost at once."""
    t_solve, _, layout = _solve_window("AC", diag_procs=2)
    gen = FailureGenerator(3, protect={0}, rank_to_grid=layout.gid_of)
    kills = gen.plan(layout.total_procs, 5, at=max(t_solve * 0.5, 1e-9))
    m = fuzz_run("AC", kills)
    assert m.n_failures == 5
    base = run_app(AppConfig(n=6, level=4, technique_code="AC", steps=16,
                             diag_procs=2), OPL)
    assert m.error_l1 < 1000 * base.error_l1
