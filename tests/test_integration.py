"""Cross-layer integration scenarios not covered by module tests."""

import numpy as np
import pytest

from repro.core import AppConfig, run_app
from repro.core.serial_app import run_serial
from repro.ft.failure_injection import Kill
from repro.machine import Hostfile
from repro.machine.presets import IDEAL, OPL, OPL_FIXED_ULFM, RAIJIN
from repro.mpi import Universe
from repro.pde import DiffusionProblem


def test_determinism_identical_runs_bit_identical():
    """Two complete app runs with failures produce identical metrics."""
    def one():
        cfg = AppConfig(n=6, level=4, technique_code="AC", steps=16,
                        diag_procs=2)
        return run_app(cfg, OPL, kills=[Kill(5, 0.00005)])

    a, b = one(), one()
    assert a.error_l1 == b.error_l1
    assert a.t_total == b.t_total
    assert a.failed_ranks == b.failed_ranks
    assert a.coefficients == b.coefficients


def test_machine_swap_changes_time_not_numerics():
    cfg = lambda: AppConfig(n=6, level=4, technique_code="CR", steps=16,
                            diag_procs=2, checkpoint_count=4)
    m_opl = run_app(cfg(), OPL)
    m_rai = run_app(cfg(), RAIJIN)
    m_ideal = run_app(cfg(), IDEAL)
    assert m_opl.error_l1 == m_rai.error_l1 == m_ideal.error_l1
    assert m_opl.t_total > m_rai.t_total > m_ideal.t_total == 0.0


def test_fixed_ulfm_machine_recovers_identically():
    cfg = lambda: AppConfig(n=6, level=4, technique_code="AC", steps=16,
                            diag_procs=2)
    t = run_app(cfg(), OPL).t_solve
    m_beta = run_app(cfg(), OPL, kills=[Kill(5, t * 0.5)])
    m_fixed = run_app(cfg(), OPL_FIXED_ULFM, kills=[Kill(5, t * 0.5)])
    # identical numerics, both recover (the cost comparison at meaningful
    # scale lives in benchmarks/test_ablation_collectives.py)
    assert m_beta.error_l1 == pytest.approx(m_fixed.error_l1, rel=1e-12)
    assert m_beta.t_reconstruct > 0 and m_fixed.t_reconstruct > 0


def test_two_independent_universes_do_not_interfere():
    async def main(ctx):
        return await ctx.comm.allreduce(ctx.rank)

    u1, u2 = Universe(IDEAL), Universe(IDEAL)
    j1 = u1.launch(3, main)
    j2 = u2.launch(5, main)
    u1.run()
    u2.run()
    assert j1.results() == [3, 3, 3]
    assert j2.results() == [10] * 5


def test_serial_and_parallel_agree_on_diffusion():
    prob = DiffusionProblem(kappa=0.05)
    s = run_serial(n=6, level=4, technique_code="AC", steps=16,
                   lost_gids=(1,), problem=prob, cfl=0.2)
    cfg = AppConfig(n=6, level=4, technique_code="AC", steps=16,
                    diag_procs=2, problem=prob, cfl=0.2,
                    simulated_lost_gids=(1,))
    p = run_app(cfg, IDEAL)
    assert s.error_l1 == pytest.approx(p.error_l1, rel=1e-10)


def test_tracer_captures_full_recovery_story():
    from repro.core.app import app_main
    from repro.core.runner import make_universe
    from repro.mpi.tracing import Tracer

    cfg = AppConfig(n=6, level=4, technique_code="AC", steps=16,
                    diag_procs=2)
    base = run_app(AppConfig(n=6, level=4, technique_code="AC", steps=16,
                             diag_procs=2), OPL)
    uni, total = make_universe(cfg, OPL)
    uni.tracer = Tracer()
    job = uni.launch(total, app_main, argv=(cfg,))
    uni.kill_rank(job, 5, at=base.t_solve * 0.5)
    uni.run()
    kinds = {e.kind for e in uni.tracer.events}
    assert {"send", "coll", "kill", "spawn"} <= kinds
    coll_ops = {e.detail.split()[0] for e in uni.tracer.filter(kind="coll")}
    # the recovery protocol's signature operations all appear
    assert {"shrink", "agree", "merge", "split", "spawn_multiple",
            "barrier", "gather"} <= coll_ops


def test_hostfile_too_small_rejected():
    cfg = AppConfig(n=6, level=4, technique_code="RC", diag_procs=2)
    total = cfg.layout().total_procs
    hf = Hostfile.uniform(1, slots=total - 1)
    uni = Universe(OPL, hostfile=hf)
    with pytest.raises((RuntimeError, IndexError)):
        uni.launch(total, lambda ctx: None)


def test_stats_accumulate_over_whole_run():
    from repro.core.app import app_main
    from repro.core.runner import make_universe

    cfg = AppConfig(n=6, level=4, technique_code="CR", steps=16,
                    diag_procs=2, checkpoint_count=4)
    uni, total = make_universe(cfg, OPL)
    job = uni.launch(total, app_main, argv=(cfg,))
    uni.run()
    s = uni.stats
    assert s.messages > 0
    assert s.collectives["barrier"] > 0
    assert s.collectives["gather"] >= total   # combination gathers
    assert s.kills == 0 and s.spawns == 0
